(** The buffered channel I/O automaton of Fig. 17 (Appendix C.1.4).

    State: a FIFO queue [Q] of messages, an unacknowledged-send flag [e],
    and an outstanding-receive flag [r]. Transitions:
    - [sendto(m)]: always enabled; pushes [m], sets [e];
    - [sent]: enabled iff [e]; clears it;
    - [recvfrom]: always enabled; sets [r];
    - [received(m)]: enabled iff [r] and [m] is the head of [Q]; pops, clears [r].

    {!replay} validates a sequence of one channel's actions against these
    preconditions — the tool the commutation lemmas and the transformation
    checker are built on. *)

type state = { queue : int list; e : bool; r : bool }

val initial : state

val step : state -> Action.t -> (state, string) result
(** Apply one action of this channel (the caller filters by channel);
    [Error] if its precondition fails. *)

val replay : Action.t list -> (state, string) result
(** Fold {!step} from {!initial}. *)

val well_formed : Action.t list -> (unit, string) result
(** §C.1.4 client-side well-formedness: the send-side projection alternates
    sendto/sent starting with sendto; the receive side alternates
    recvfrom/received starting with recvfrom. *)
