type report = {
  transformed : Schedule.t;
  equivalent : bool;
  valid : bool;
  sequential : bool;
}

let check_sequential (t : Schedule.t) =
  (* Scan: while an operation is open, no other invocation may appear. *)
  let open_op = ref None in
  let ok = ref true in
  Array.iter
    (fun a ->
      match (a : Action.t) with
      | Action.Invoke { op; _ } ->
        if !open_op <> None then ok := false else open_op := Some op
      | Action.Response { op; _ } ->
        (match !open_op with
        | Some op' when op' = op -> open_op := None
        | Some _ | None -> ok := false)
      | Action.Internal _ | Action.Sendto _ | Action.Sent _ | Action.Recvfrom _
      | Action.Received _ ->
        ())
    t;
  !ok

let lemma_c5 ~(sched : Schedule.t) ~serialization ?(reads_from = []) () =
  let n = Array.length sched in
  (* S-positions: invocation of the p-th op at 2p, its response at 2p+1;
     unserialized ops after everything. *)
  let op_pos = Hashtbl.create 16 in
  List.iteri (fun p op -> Hashtbl.replace op_pos op p) serialization;
  let unserialized = 2 * List.length serialization in
  let s_position (a : Action.t) =
    match a with
    | Action.Invoke { op; _ } -> (
      match Hashtbl.find_opt op_pos op with
      | Some p -> Some (2 * p)
      | None -> Some unserialized)
    | Action.Response { op; _ } -> (
      match Hashtbl.find_opt op_pos op with
      | Some p -> Some ((2 * p) + 1)
      | None -> Some (unserialized + 1))
    | Action.Internal _ | Action.Sendto _ | Action.Sent _ | Action.Recvfrom _
    | Action.Received _ ->
      None
  in
  (* The premise: S must respect potential causality between operations. *)
  let causal =
    match Schedule.causal ~reads_from sched with
    | c -> c
    | exception Invalid_argument m -> invalid_arg m
  in
  let contradiction = ref None in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if !contradiction = None && Rss_core.Causal.precedes causal i j then
        match (s_position sched.(i), s_position sched.(j)) with
        | Some pi, Some pj when pi > pj ->
          contradiction :=
            Some (Fmt.str "S orders action %d before %d against causality" j i)
        | _ -> ()
    done
  done;
  match !contradiction with
  | Some m -> Error m
  | None ->
    (* M(i): the S-maximal system-facing position causally at-or-before i.
       The schedule itself is a topological order of the causal DAG, so one
       forward pass with direct predecessors suffices; we use full
       reachability for clarity at these sizes. *)
    let m = Array.make n (-1) in
    for i = 0 to n - 1 do
      (match s_position sched.(i) with Some p -> m.(i) <- p | None -> ());
      for j = 0 to i - 1 do
        if Rss_core.Causal.precedes causal j i && m.(j) > m.(i) then m.(i) <- m.(j)
      done
    done;
    (* Stable sort by M — the ≺ / ≡ order of the proof. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> if m.(a) <> m.(b) then compare m.(a) m.(b) else compare a b)
      order;
    let transformed = Array.map (fun i -> sched.(i)) order in
    let equivalent = Schedule.equivalent sched transformed in
    let valid = match Schedule.validate transformed with Ok () -> true | Error _ -> false in
    let sequential = check_sequential transformed in
    Ok { transformed; equivalent; valid; sequential }
