(** The Lemma C.5 / Lemma 1 transformation, executably.

    Given a schedule whose operations satisfy causal precedence with respect
    to a serialization S — i.e. S orders the complete operations consistently
    with potential causality — reorder the {e whole} schedule so that:
    - every process's sub-execution is untouched (the executions are
      equivalent, so final states agree: Theorem 2), and
    - the service interactions become sequential in S's order (the
      real-time-precedence / strictly serializable shape).

    Each action moves to the position of the S-maximal system-facing action
    that causally precedes it; ties keep schedule order. This is exactly the
    ≺ / ≡ construction in the proof. *)

type report = {
  transformed : Schedule.t;
  equivalent : bool;  (** per-process projections preserved *)
  valid : bool;  (** still a well-formed execution (channels, processes) *)
  sequential : bool;
      (** no invocation interleaves another operation's invoke-response pair *)
}

val lemma_c5 :
  sched:Schedule.t -> serialization:int list ->
  ?reads_from:(int * int) list -> unit -> (report, string) result
(** [serialization] lists op ids in S order; ops absent from it (incomplete)
    sort last. [reads_from] are causal edges between action indices (derived
    from the service's reads-from relation). Errors if S contradicts
    causality (the premise of the lemma fails). *)

val check_sequential : Schedule.t -> bool
(** Are the system-facing actions sequential (each invoke immediately
    resolved before any other operation begins)? *)
