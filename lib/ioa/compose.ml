type op = {
  o_id : int;
  o_service : int;
  o_proc : int;
  o_inv : int;
  o_is_fence : bool;
}

let ( let* ) = Result.bind

let compose ~ops ~orders =
  (* Index ops and validate. *)
  let by_id = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        if Hashtbl.mem by_id o.o_id then Error (Fmt.str "duplicate op id %d" o.o_id)
        else begin
          Hashtbl.add by_id o.o_id o;
          Ok ()
        end)
      (Ok ()) ops
  in
  let* () =
    List.fold_left
      (fun acc (service, order) ->
        let* () = acc in
        List.fold_left
          (fun acc id ->
            let* () = acc in
            match Hashtbl.find_opt by_id id with
            | None -> Error (Fmt.str "order of service %d mentions unknown op %d" service id)
            | Some o when o.o_service <> service ->
              Error (Fmt.str "op %d serialized at service %d but belongs to %d" id service o.o_service)
            | Some _ -> Ok ())
          (Ok ()) order)
      (Ok ()) orders
  in
  (* Position of each op within its service's serialization. *)
  let pos = Hashtbl.create 64 in
  List.iter
    (fun (_, order) -> List.iteri (fun i id -> Hashtbl.replace pos id i) order)
    orders;
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        if Hashtbl.mem pos o.o_id then Ok ()
        else Error (Fmt.str "op %d missing from service %d's order" o.o_id o.o_service))
      (Ok ()) ops
  in
  (* Next fence nf(π): for each service, walk its order backwards carrying
     the nearest fence at-or-after each position. A virtual terminal fence
     (id -service-1, L = +∞-ish) closes each service (§C.4's i_⊤). *)
  let terminal service = -(service + 1) in
  let next_fence = Hashtbl.create 64 in
  let fence_last_inv = Hashtbl.create 16 in
  List.iter
    (fun (service, order) ->
      (* L(f): the latest invocation among ops at or before f in this
         service's order (computed in a forward pass). *)
      let running = ref min_int in
      List.iter
        (fun id ->
          let o = Hashtbl.find by_id id in
          if o.o_inv > !running then running := o.o_inv;
          if o.o_is_fence then Hashtbl.replace fence_last_inv id !running)
        order;
      Hashtbl.replace fence_last_inv (terminal service) max_int;
      let nearest = ref (terminal service) in
      List.iter
        (fun id ->
          let o = Hashtbl.find by_id id in
          if o.o_is_fence then nearest := id;
          Hashtbl.replace next_fence id !nearest)
        (List.rev order))
    orders;
  (* ⊲ over fences; ≺ over ops. *)
  let service_of id =
    if id < 0 then -id - 1 else (Hashtbl.find by_id id).o_service
  in
  let fence_lt f1 f2 =
    if service_of f1 = service_of f2 then
      (* same service: serialization order (terminal fence last) *)
      if f1 < 0 then false
      else if f2 < 0 then true
      else Hashtbl.find pos f1 < Hashtbl.find pos f2
    else
      let l1 = Hashtbl.find fence_last_inv f1
      and l2 = Hashtbl.find fence_last_inv f2 in
      if l1 <> l2 then l1 < l2 else service_of f1 < service_of f2
  in
  let op_compare a b =
    let fa = Hashtbl.find next_fence a.o_id and fb = Hashtbl.find next_fence b.o_id in
    if fa = fb then compare (Hashtbl.find pos a.o_id) (Hashtbl.find pos b.o_id)
    else if fence_lt fa fb then -1
    else 1
  in
  let result =
    List.filter (fun o -> not o.o_is_fence) ops
    |> List.sort op_compare
    |> List.map (fun o -> o.o_id)
  in
  Ok result
