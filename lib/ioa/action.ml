type t =
  | Internal of { proc : int; tag : int }
  | Sendto of { src : int; dst : int; msg : int }
  | Sent of { src : int; dst : int }
  | Recvfrom of { src : int; dst : int }
  | Received of { src : int; dst : int; msg : int }
  | Invoke of { proc : int; op : int }
  | Response of { proc : int; op : int }

let proc_of = function
  | Internal { proc; _ } | Invoke { proc; _ } | Response { proc; _ } -> proc
  | Sendto { src; _ } | Sent { src; _ } -> src
  | Recvfrom { dst; _ } | Received { dst; _ } -> dst

let channel_of = function
  | Sendto { src; dst; _ }
  | Sent { src; dst }
  | Recvfrom { src; dst }
  | Received { src; dst; _ } ->
    Some (src, dst)
  | Internal _ | Invoke _ | Response _ -> None

let is_system_facing = function
  | Invoke _ | Response _ -> true
  | Internal _ | Sendto _ | Sent _ | Recvfrom _ | Received _ -> false

let pp ppf = function
  | Internal { proc; tag } -> Fmt.pf ppf "int(p%d,%d)" proc tag
  | Sendto { src; dst; msg } -> Fmt.pf ppf "sendto(%d->%d,%d)" src dst msg
  | Sent { src; dst } -> Fmt.pf ppf "sent(%d->%d)" src dst
  | Recvfrom { src; dst } -> Fmt.pf ppf "recvfrom(%d->%d)" src dst
  | Received { src; dst; msg } -> Fmt.pf ppf "received(%d->%d,%d)" src dst msg
  | Invoke { proc; op } -> Fmt.pf ppf "inv(p%d,op%d)" proc op
  | Response { proc; op } -> Fmt.pf ppf "resp(p%d,op%d)" proc op
