type state = { queue : int list; e : bool; r : bool }

let initial = { queue = []; e = false; r = false }

let step s (a : Action.t) =
  match a with
  | Action.Sendto { msg; _ } -> Ok { s with queue = s.queue @ [ msg ]; e = true }
  | Action.Sent _ ->
    if s.e then Ok { s with e = false } else Error "sent without pending sendto"
  | Action.Recvfrom _ -> Ok { s with r = true }
  | Action.Received { msg; _ } -> (
    if not s.r then Error "received without recvfrom"
    else
      match s.queue with
      | head :: rest when head = msg -> Ok { queue = rest; e = s.e; r = false }
      | head :: _ -> Error (Fmt.str "received %d but head is %d" msg head)
      | [] -> Error "received from empty queue")
  | Action.Internal _ | Action.Invoke _ | Action.Response _ ->
    Error "not a channel action"

let replay actions =
  List.fold_left
    (fun acc a -> match acc with Error _ -> acc | Ok s -> step s a)
    (Ok initial) actions

let well_formed actions =
  let send_side = ref `Idle and recv_side = ref `Idle in
  let rec walk = function
    | [] -> Ok ()
    | a :: rest -> (
      match (a : Action.t) with
      | Action.Sendto _ ->
        if !send_side = `Idle then begin
          send_side := `Pending;
          walk rest
        end
        else Error "sendto while a send is outstanding"
      | Action.Sent _ ->
        if !send_side = `Pending then begin
          send_side := `Idle;
          walk rest
        end
        else Error "sent without sendto"
      | Action.Recvfrom _ ->
        if !recv_side = `Idle then begin
          recv_side := `Pending;
          walk rest
        end
        else Error "recvfrom while a receive is outstanding"
      | Action.Received _ ->
        if !recv_side = `Pending then begin
          recv_side := `Idle;
          walk rest
        end
        else Error "received without recvfrom"
      | Action.Internal _ | Action.Invoke _ | Action.Response _ ->
        Error "not a channel action")
  in
  walk actions
