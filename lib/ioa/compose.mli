(** The Appendix C.4 composition construction, executably.

    Given operations spread over several services, each service's own
    serialization (which must individually satisfy RSC/RSS), and the
    real-time fences processes issued, this builds the global total order of
    Theorem C.14:

    - fences are ordered by [⊲]: same service → that service's serialization;
      different services → by their {e last invocation} [L(f)] (the latest
      invocation among operations serialized at or before the fence);
    - every operation is lifted by its {e next fence} [nf(π)] (the earliest
      same-service fence at or after it, with a virtual terminal fence per
      service), and [π₁ ≺ π₂] iff [nf π₁ ⊲ nf π₂], falling back to the
      service order when the fences coincide.

    The theorem: if each process issues the previous service's fence before
    switching services, [≺] is a total order satisfying RSC. The tests pair
    this with the checkers: composed orders of fence-disciplined executions
    replay legally; fence-free executions can produce the §4.1 cycle, which
    this construction surfaces as an inconsistent (non-legal) global order. *)

type op = {
  o_id : int;
  o_service : int;
  o_proc : int;
  o_inv : int;  (** invocation time in the real execution *)
  o_is_fence : bool;
}

val compose :
  ops:op list -> orders:(int * int list) list -> (int list, string) result
(** [orders] maps each service to its serialization (op ids, fences
    included). Returns the global order of non-fence operations. Errors on
    malformed input (an op missing from its service's order, duplicate ids,
    an order mentioning unknown ops). *)
