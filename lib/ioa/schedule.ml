type t = Action.t array

let channel_actions t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      match Action.channel_of a with
      | None -> ()
      | Some ch ->
        Hashtbl.replace tbl ch (a :: (try Hashtbl.find tbl ch with Not_found -> [])))
    t;
  Hashtbl.fold (fun ch acts acc -> (ch, List.rev acts) :: acc) tbl []

let validate t =
  let exception Bad of string in
  try
    (* Channels. *)
    List.iter
      (fun ((src, dst), acts) ->
        (match Channel.replay acts with
        | Ok _ -> ()
        | Error m -> raise (Bad (Fmt.str "channel %d->%d: %s" src dst m)));
        match Channel.well_formed acts with
        | Ok () -> ()
        | Error m -> raise (Bad (Fmt.str "channel %d->%d: %s" src dst m)))
      (channel_actions t);
    (* Processes. *)
    let outstanding : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let op_invoked = Hashtbl.create 16 in
    let op_responded = Hashtbl.create 16 in
    Array.iter
      (fun a ->
        let proc = Action.proc_of a in
        let awaiting = Hashtbl.mem outstanding proc in
        (match a with
        | Action.Invoke { op; _ } ->
          if awaiting then raise (Bad (Fmt.str "p%d invokes while awaiting" proc));
          if Hashtbl.mem op_invoked op then raise (Bad (Fmt.str "op %d invoked twice" op));
          Hashtbl.replace op_invoked op proc;
          Hashtbl.replace outstanding proc op
        | Action.Response { op; _ } ->
          (match Hashtbl.find_opt outstanding proc with
          | Some op' when op' = op -> Hashtbl.remove outstanding proc
          | Some _ | None ->
            raise (Bad (Fmt.str "p%d response for op %d without invocation" proc op)));
          if Hashtbl.mem op_responded op then
            raise (Bad (Fmt.str "op %d responded twice" op));
          Hashtbl.replace op_responded op ()
        | Action.Sendto _ | Action.Recvfrom _ ->
          if awaiting then
            raise (Bad (Fmt.str "p%d takes an output step while awaiting" proc))
        | Action.Internal _ | Action.Sent _ | Action.Received _ -> ()))
      t;
    Ok ()
  with Bad m -> Error m

let projection t ~proc =
  Array.to_list t |> List.filter (fun a -> Action.proc_of a = proc)

let procs t =
  Array.to_list t |> List.map Action.proc_of |> List.sort_uniq compare

let equivalent a b =
  let ps = List.sort_uniq compare (procs a @ procs b) in
  List.for_all (fun proc -> projection a ~proc = projection b ~proc) ps

let causal ?(reads_from = []) t =
  let n = Array.length t in
  let edges = ref reads_from in
  (* Process order: chain consecutive actions of each process. *)
  let last_of_proc = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      let proc = Action.proc_of a in
      (match Hashtbl.find_opt last_of_proc proc with
      | Some j -> edges := (j, i) :: !edges
      | None -> ());
      Hashtbl.replace last_of_proc proc i)
    t;
  (* Message pairing: k-th sendto on a channel -> k-th received (FIFO). *)
  let sends = Hashtbl.create 8 and recvs = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      match a with
      | Action.Sendto { src; dst; _ } ->
        Hashtbl.replace sends (src, dst)
          (i :: (try Hashtbl.find sends (src, dst) with Not_found -> []))
      | Action.Received { src; dst; _ } ->
        Hashtbl.replace recvs (src, dst)
          (i :: (try Hashtbl.find recvs (src, dst) with Not_found -> []))
      | Action.Internal _ | Action.Sent _ | Action.Recvfrom _ | Action.Invoke _
      | Action.Response _ ->
        ())
    t;
  Hashtbl.iter
    (fun ch send_idxs ->
      let send_idxs = List.rev send_idxs in
      let recv_idxs =
        match Hashtbl.find_opt recvs ch with None -> [] | Some l -> List.rev l
      in
      let rec pair ss rs =
        match (ss, rs) with
        | s :: ss', r :: rs' ->
          edges := (s, r) :: !edges;
          pair ss' rs'
        | _, [] | [], _ -> ()
      in
      pair send_idxs recv_idxs)
    sends;
  List.iter
    (fun (a, b) ->
      if a >= b then
        invalid_arg (Fmt.str "Schedule.causal: edge (%d,%d) against schedule order" a b))
    !edges;
  Rss_core.Causal.of_edges ~n !edges

let commutable (a : Action.t) (b : Action.t) =
  let send_side = function Action.Sendto _ | Action.Sent _ -> true | _ -> false in
  let recv_side = function Action.Recvfrom _ | Action.Received _ -> true | _ -> false in
  let same_message a b =
    match (a, b) with
    | Action.Sendto { msg; _ }, Action.Received { msg = m'; _ }
    | Action.Received { msg = m'; _ }, Action.Sendto { msg; _ } ->
      msg = m'
    | _ -> false
  in
  (send_side a && recv_side b) || (recv_side a && send_side b)
  |> fun sides_ok -> sides_ok && not (same_message a b)

let swap_adjacent t k =
  if k < 0 || k + 1 >= Array.length t then Error "index out of range"
  else begin
    let a = t.(k) and b = t.(k + 1) in
    match (Action.channel_of a, Action.channel_of b) with
    | Some ch1, Some ch2 when ch1 = ch2 ->
      if Action.proc_of a = Action.proc_of b then
        Error "cannot reorder one process's actions"
      else if not (commutable a b) then Error "actions do not commute (Lemmas C.1-C.4)"
      else begin
        let t' = Array.copy t in
        t'.(k) <- b;
        t'.(k + 1) <- a;
        match validate t' with
        | Ok () -> Ok t'
        | Error m -> Error (Fmt.str "swap broke the execution (!): %s" m)
      end
    | _ -> Error "not actions of one channel"
  end
