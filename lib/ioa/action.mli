(** Actions of the paper's formal system model (Appendix C.1.6): an
    application is the composition of process automata and buffered channel
    automata, plus system-facing invocation/response actions at a (possibly
    composite) service. This concrete action alphabet is what executions,
    schedules, and the Lemma C.5 transformation operate on. *)

type t =
  | Internal of { proc : int; tag : int }  (** local computation *)
  | Sendto of { src : int; dst : int; msg : int }
      (** process [src]'s output action at channel C_{src,dst} *)
  | Sent of { src : int; dst : int }  (** the channel's transmission ack *)
  | Recvfrom of { src : int; dst : int }
      (** process [dst] asks the channel for the next message *)
  | Received of { src : int; dst : int; msg : int }  (** delivery to [dst] *)
  | Invoke of { proc : int; op : int }  (** system-facing invocation of op *)
  | Response of { proc : int; op : int }  (** matching response *)

val proc_of : t -> int
(** The process that takes the step ([Sent]/[Received] are channel outputs
    delivered to the sender/receiver respectively — they appear in that
    process's sub-execution, §C.1.4). *)

val channel_of : t -> (int * int) option
(** [(src, dst)] for the four channel action kinds. *)

val is_system_facing : t -> bool

val pp : Format.formatter -> t -> unit
