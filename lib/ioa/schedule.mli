(** Schedules (Appendix C.1): finite sequences of actions of the composed
    process-and-channel system, with validation, projection, the potential
    causality relation over actions, and the commutation moves of Lemmas
    C.1-C.4. *)

type t = Action.t array

val validate : t -> (unit, string) result
(** Well-formedness of the whole execution:
    - every channel's action subsequence satisfies the Fig. 17 automaton and
      the alternating send/receive discipline;
    - each process has at most one outstanding invocation and takes no
      output step (sendto, recvfrom, invoke) while awaiting a response;
    - invocations and responses pair up per (proc, op), one op each. *)

val projection : t -> proc:int -> Action.t list
(** The process's sub-execution [α|P_i]. *)

val equivalent : t -> t -> bool
(** §3.1 equivalence: identical projections for every process. *)

val procs : t -> int list

val causal :
  ?reads_from:(int * int) list -> t -> Rss_core.Causal.t
(** Potential causality over action {e indices} (§C.1.8): process order,
    the k-th [sendto] on a channel to its k-th [received] (FIFO pairing),
    caller-supplied reads-from edges between action indices, transitively
    closed. Raises [Invalid_argument] if an edge points backwards in the
    schedule (not a real execution). *)

val swap_adjacent : t -> int -> (t, string) result
(** [swap_adjacent t k] exchanges actions [k] and [k+1] when Lemmas C.1-C.4
    apply: both are actions of the same channel, taken by different
    processes, one from the send side ([sendto]/[sent]) and one from the
    receive side ([recvfrom]/[received]), and not a [sendto(m)]/[received(m)]
    pair of the same message. The result is validated — per the lemmas it
    must still be an execution. *)
