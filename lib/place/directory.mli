(** Epoch-versioned placement directory: key-range -> shard ownership.

    The authoritative map is a static base layout (epoch 0) overlaid with
    one range assignment per committed migration; assignments are applied
    newest-first, so the most recent migration of a key wins. Every commit
    bumps the epoch by exactly one and appends the assignment to a
    {!Sim.Durable} log.

    Clients hold cached {!view}s. A view answers lookups from its snapshot
    of the overlay without consulting the directory, goes {!stale} when a
    migration commits, and is repaired with {!refresh} — the protocol layer
    calls it when a shard bounces a misrouted request.

    All lookups are pure (no events, no randomness, no clock reads):
    directory-dispatched runs with no migrations are schedule-identical to
    static [key mod n_shards] dispatch. *)

type assignment = {
  a_epoch : int;  (** epoch this assignment created *)
  a_lo : int;  (** inclusive *)
  a_hi : int;  (** exclusive *)
  a_owner : int;  (** new owning shard *)
  a_tm : int;  (** migration timestamp [t_m] *)
}

type t

val create : ?base:(int -> int) -> n_shards:int -> unit -> t
(** [base] is the epoch-0 layout (default [fun key -> key mod n_shards]);
    it must send every key to [0 <= shard < n_shards]. *)

val n_shards : t -> int

val epoch : t -> int
(** Monotone; starts at 0, +1 per {!commit}. *)

val owner : t -> int -> int
(** Authoritative owner of a key at the current epoch. *)

val commit : t -> lo:int -> hi:int -> owner:int -> tm:int -> int
(** Atomically install [\[lo, hi) -> owner] with migration timestamp [tm];
    durably logs the assignment and returns the new epoch. *)

val assignments : t -> assignment list
(** Committed assignments, oldest first. *)

val log_entries : t -> assignment list
(** The durable log contents (equals {!assignments}). *)

val durable_appends : t -> int
val durable_bytes : t -> int

(** {1 Verified recovery}

    The durable log is one replica's persistence of the (conceptually
    quorum-replicated) assignment overlay. After a crash that may have
    damaged it, {!recover} verifies the framing and heals: a torn or
    resurfaced suffix is truncated and the lost assignments are re-appended
    from the overlay (the "peer" copy). Mid-log corruption with
    [peer:false] — no quorum reachable — fail-stops with a diagnostic
    rather than replaying a wrong ownership map. *)

val recover : ?peer:bool -> t -> [ `Ok | `Repaired of int | `Failstop of string ]
(** [`Repaired k] re-persisted [k] assignments. Default [peer:true]. *)

val repairs : t -> int
(** Total assignments re-persisted by {!recover} (and the scrub pass). *)

val failstopped : t -> string option
(** The diagnostic, if the directory ever refused to replay. *)

(** {1 Cached client views} *)

type view

val view : t -> view
(** A fresh view at the directory's current epoch. *)

val view_epoch : view -> int
val view_refreshes : view -> int

val stale : view -> bool
(** Has the directory moved past this view's epoch? *)

val refresh : view -> unit
(** Catch the view up to the directory's current epoch (no-op if fresh). *)

val view_owner : view -> int -> int
(** Owner of a key {e according to the cached view} — possibly stale; the
    owning shard's own check is authoritative. *)
