(* Epoch-versioned placement directory: the authoritative key -> shard map
   plus client-side cached views.

   Ownership is a base map (the static layout the cluster booted with,
   epoch 0) overlaid with a newest-first list of range assignments, one per
   committed migration. Epochs are monotone: every commit bumps the epoch
   by exactly one and appends the assignment to a durable log, so a
   recovering directory replica can rebuild the overlay by replaying the
   log in order.

   Lookups are pure: they draw no randomness, schedule no events and read
   no clocks, so wiring the directory into a protocol's dispatch path
   leaves seeded schedules byte-identical as long as no migration commits. *)

type assignment = {
  a_epoch : int;  (* epoch this assignment created *)
  a_lo : int;  (* inclusive *)
  a_hi : int;  (* exclusive *)
  a_owner : int;  (* new owning shard *)
  a_tm : int;  (* migration timestamp: writes below stayed at the source *)
}

type t = {
  n_shards : int;
  base : int -> int;
  mutable epoch : int;
  mutable overrides : assignment list;  (* newest first *)
  store : Sim.Durable.t;
  log : assignment Sim.Durable.log;
}

let create ?base ~n_shards () =
  if n_shards <= 0 then invalid_arg "Directory.create: n_shards must be positive";
  let base = match base with Some f -> f | None -> fun key -> key mod n_shards in
  let store = Sim.Durable.create ~site:0 ~name:"place.directory" in
  { n_shards; base; epoch = 0; overrides = []; store; log = Sim.Durable.log store }

let n_shards t = t.n_shards
let epoch t = t.epoch

let owner_in ~base ~n_shards overrides key =
  let rec find = function
    | [] ->
      let o = base key in
      if o < 0 || o >= n_shards then
        Fmt.invalid_arg "Directory: base map sent key %d to shard %d (of %d)" key o
          n_shards;
      o
    | a :: rest -> if key >= a.a_lo && key < a.a_hi then a.a_owner else find rest
  in
  find overrides

let owner t key = owner_in ~base:t.base ~n_shards:t.n_shards t.overrides key

let commit t ~lo ~hi ~owner ~tm =
  if hi <= lo then invalid_arg "Directory.commit: empty range";
  if owner < 0 || owner >= t.n_shards then
    invalid_arg "Directory.commit: owner out of range";
  t.epoch <- t.epoch + 1;
  let a = { a_epoch = t.epoch; a_lo = lo; a_hi = hi; a_owner = owner; a_tm = tm } in
  t.overrides <- a :: t.overrides;
  ignore (Sim.Durable.append t.log ~bytes:40 a);
  t.epoch

let assignments t = List.rev t.overrides
let log_entries t = Sim.Durable.to_list t.log
let durable_appends t = Sim.Durable.appends t.store
let durable_bytes t = Sim.Durable.bytes_written t.store

(* ------------------------------------------------------------------ *)
(* Client-side cached views                                           *)
(* ------------------------------------------------------------------ *)

type view = {
  v_dir : t;
  mutable v_epoch : int;
  mutable v_overrides : assignment list;
  mutable v_refreshes : int;
}

let view t = { v_dir = t; v_epoch = t.epoch; v_overrides = t.overrides; v_refreshes = 0 }

let view_epoch v = v.v_epoch
let view_refreshes v = v.v_refreshes
let stale v = v.v_epoch <> v.v_dir.epoch

let refresh v =
  if stale v then begin
    v.v_epoch <- v.v_dir.epoch;
    v.v_overrides <- v.v_dir.overrides;
    v.v_refreshes <- v.v_refreshes + 1
  end

let view_owner v key =
  owner_in ~base:v.v_dir.base ~n_shards:v.v_dir.n_shards v.v_overrides key
