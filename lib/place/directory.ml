(* Epoch-versioned placement directory: the authoritative key -> shard map
   plus client-side cached views.

   Ownership is a base map (the static layout the cluster booted with,
   epoch 0) overlaid with a newest-first list of range assignments, one per
   committed migration. Epochs are monotone: every commit bumps the epoch
   by exactly one and appends the assignment to a durable log, so a
   recovering directory replica can rebuild the overlay by replaying the
   log in order.

   Lookups are pure: they draw no randomness, schedule no events and read
   no clocks, so wiring the directory into a protocol's dispatch path
   leaves seeded schedules byte-identical as long as no migration commits. *)

type assignment = {
  a_epoch : int;  (* epoch this assignment created *)
  a_lo : int;  (* inclusive *)
  a_hi : int;  (* exclusive *)
  a_owner : int;  (* new owning shard *)
  a_tm : int;  (* migration timestamp: writes below stayed at the source *)
}

type t = {
  n_shards : int;
  base : int -> int;
  mutable epoch : int;
  mutable overrides : assignment list;  (* newest first *)
  store : Sim.Durable.t;
  log : assignment Sim.Durable.log;
  mutable n_repairs : int;  (* assignments re-persisted by [recover] *)
  mutable failstop : string option;
}

(* Verified recovery of the durable assignment log.

   The running overlay is the replicated state machine (conceptually backed
   by a quorum of directory replicas); the log is this replica's durable
   copy. [recover] classifies storage damage with [read_verified] and heals
   the log from the overlay — truncate the torn or resurfaced suffix, then
   re-append the assignments the journal lost. Mid-log corruption needs
   that peer copy: with [peer:false] (no quorum reachable) the directory
   fail-stops with a diagnostic instead of replaying garbage. *)
let recover ?(peer = true) t =
  let heal_from verified_len =
    Sim.Durable.truncate t.log (min verified_len (Sim.Durable.length t.log));
    Sim.Durable.repair_torn_tail t.log;
    let missing =
      List.filteri (fun i _ -> i >= verified_len) (List.rev t.overrides)
    in
    List.iter (fun a -> ignore (Sim.Durable.append t.log ~bytes:40 a)) missing;
    let k = List.length missing in
    t.n_repairs <- t.n_repairs + k;
    k
  in
  match Sim.Durable.read_verified t.log with
  | Sim.Durable.Ok -> `Ok
  | Sim.Durable.Torn_tail n -> `Repaired (heal_from n)
  | Sim.Durable.Corrupt i ->
    if i >= Sim.Durable.journalled_length t.log || peer then
      (* Resurfaced junk past the journal, or a peer copy (the overlay)
         vouches for the prefix: drop the suspect suffix and re-persist. *)
      `Repaired (heal_from i)
    else begin
      let msg =
        Fmt.str
          "place.directory: log corrupt at index %d (journalled %d) and no \
           peer holds the assignments — refusing to replay"
          i
          (Sim.Durable.journalled_length t.log)
      in
      t.failstop <- Some msg;
      `Failstop msg
    end

let create ?base ~n_shards () =
  if n_shards <= 0 then invalid_arg "Directory.create: n_shards must be positive";
  let base = match base with Some f -> f | None -> fun key -> key mod n_shards in
  let store = Sim.Durable.create ~site:0 ~name:"place.directory" in
  let t =
    {
      n_shards;
      base;
      epoch = 0;
      overrides = [];
      store;
      log = Sim.Durable.log store;
      n_repairs = 0;
      failstop = None;
    }
  in
  (* A background scrub that flags this log repairs it the same way
     recovery would. *)
  Sim.Durable.set_repairer t.log (fun _ -> ignore (recover t));
  t

let repairs t = t.n_repairs
let failstopped t = t.failstop

let n_shards t = t.n_shards
let epoch t = t.epoch

let owner_in ~base ~n_shards overrides key =
  let rec find = function
    | [] ->
      let o = base key in
      if o < 0 || o >= n_shards then
        Fmt.invalid_arg "Directory: base map sent key %d to shard %d (of %d)" key o
          n_shards;
      o
    | a :: rest -> if key >= a.a_lo && key < a.a_hi then a.a_owner else find rest
  in
  find overrides

let owner t key = owner_in ~base:t.base ~n_shards:t.n_shards t.overrides key

let commit t ~lo ~hi ~owner ~tm =
  if hi <= lo then invalid_arg "Directory.commit: empty range";
  if owner < 0 || owner >= t.n_shards then
    invalid_arg "Directory.commit: owner out of range";
  t.epoch <- t.epoch + 1;
  let a = { a_epoch = t.epoch; a_lo = lo; a_hi = hi; a_owner = owner; a_tm = tm } in
  t.overrides <- a :: t.overrides;
  ignore (Sim.Durable.append t.log ~bytes:40 a);
  t.epoch

let assignments t = List.rev t.overrides
let log_entries t = Sim.Durable.to_list t.log
let durable_appends t = Sim.Durable.appends t.store
let durable_bytes t = Sim.Durable.bytes_written t.store

(* ------------------------------------------------------------------ *)
(* Client-side cached views                                           *)
(* ------------------------------------------------------------------ *)

type view = {
  v_dir : t;
  mutable v_epoch : int;
  mutable v_overrides : assignment list;
  mutable v_refreshes : int;
}

let view t = { v_dir = t; v_epoch = t.epoch; v_overrides = t.overrides; v_refreshes = 0 }

let view_epoch v = v.v_epoch
let view_refreshes v = v.v_refreshes
let stale v = v.v_epoch <> v.v_dir.epoch

let refresh v =
  if stale v then begin
    v.v_epoch <- v.v_dir.epoch;
    v.v_overrides <- v.v_dir.overrides;
    v.v_refreshes <- v.v_refreshes + 1
  end

let view_owner v key =
  owner_in ~base:v.v_dir.base ~n_shards:v.v_dir.n_shards v.v_overrides key
