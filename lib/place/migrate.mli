(** Two-phase live key-range migration driver.

    Per source shard: fence the range, drain its locks, cut a migration
    timestamp [t_m] above the source's write watermark and [TT.latest],
    ship a snapshot to the destination (both sides durably log the epoch
    bump); then wait out a real-time barrier on the largest [t_m] — the
    commit-wait rule applied to placement — re-verify every fence in the
    same event, and commit the new epoch in the {!Directory}. Lost fences
    and timed-out ships send the affected source back through the loop;
    snapshot installation is idempotent, so duplicate ships are harmless.

    The driver touches the world only through {!hooks} (supplied by
    [Spanner.Protocol.migrate]), keeping this library protocol-agnostic
    and mock-testable. *)

type stats = {
  mutable started : int;
  mutable completed : int;
  mutable failed : int;  (** retry budget exhausted; fences were lifted *)
  mutable source_retries : int;
  mutable keys_moved : int;  (** keys shipped, counting re-ships *)
  mutable fence_hold_us : int;  (** total fence hold across sources *)
  mutable max_fence_hold_us : int;
}

val stats_create : unit -> stats

type hooks = {
  h_now : unit -> int;
  h_sleep : int -> (unit -> unit) -> unit;
  h_sources : lo:int -> hi:int -> dst:int -> int list;
  h_fence : src:int -> lo:int -> hi:int -> unit;
  h_fence_ok : src:int -> lo:int -> hi:int -> bool;
  h_drained : src:int -> lo:int -> hi:int -> bool;
  h_cut : src:int -> int;
  h_ship : src:int -> lo:int -> hi:int -> tm:int -> (int -> unit) -> unit;
  h_barrier : tm:int -> (unit -> unit) -> unit;
  h_commit : lo:int -> hi:int -> dst:int -> tm:int -> int;
  h_unfence : src:int -> unit;
}

type result = {
  r_ok : bool;
  r_epoch : int;  (** new epoch, [-1] on failure *)
  r_tm : int;
  r_sources : int list;
  r_keys_moved : int;
}

val run :
  hooks ->
  ?tracer:Obs.Trace.t ->
  ?no_fence:bool ->
  ?poll_us:int ->
  ?attempt_timeout_us:int ->
  ?drain_timeout_us:int ->
  ?max_retries:int ->
  stats:stats ->
  lo:int ->
  hi:int ->
  dst:int ->
  (result -> unit) ->
  unit
(** [run hooks ~stats ~lo ~hi ~dst k] migrates [\[lo, hi)] to shard [dst]
    and calls [k] exactly once. [?no_fence] is the mutation control for
    the safety tests: it skips fence, drain and barrier, deliberately
    losing writes that race the snapshot — the online checker must flag
    the resulting stale reads. A drain that cannot finish within
    [?drain_timeout_us] (default 120 sim-seconds — faults can strand an
    in-range 2PC participant in prepared state) burns a retry instead of
    pinning the fence forever. Emits one [Obs.Trace.Migration] span when
    [tracer] is live. *)
