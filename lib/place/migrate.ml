(* Two-phase live migration driver.

   The driver is protocol-agnostic: everything it does to the world goes
   through a [hooks] record supplied by the protocol layer (Spanner wires
   it in [Protocol.migrate]), which keeps this library free of a
   dependency cycle and lets tests drive it against a mock.

   Per source shard, sequentially:

     fence   -- block new lock acquisitions on the range (volatile marker
                on the source leader; a rebuilt leader forgets it)
     drain   -- poll until no read/write lock or queued request survives
                in the range; commit wait then guarantees every drained
                writer's commit timestamp precedes real time, hence t_m
     cut     -- pick t_m above the source's max write timestamp and
                TT.latest, and advance the source so nothing can ever
                commit below t_m there again
     ship    -- snapshot the range, durably log the outgoing bump, send
                the snapshot to the destination, which installs it,
                advances its own write watermark to t_m and durably logs
                the incoming bump before acking

   Then one real-time barrier on the largest t_m (exactly the commit-wait
   rule: proceed only once t_m < TT.earliest), and — in the same event —
   a re-check that every fence is still standing before the epoch commit.
   A fence lost to a leader failover, or a ship that timed out (replica
   view superseded, message dropped), sends that source back through the
   loop with a fresh, larger t_m; snapshot installation is idempotent
   (versions merge by timestamp), so a late duplicate ship is harmless.

   Why RSS survives the handoff: clients can only reach the destination
   after the epoch commit, which happens after the barrier, so any read
   served by the new owner starts in real time after t_m — and the
   destination holds every version below t_m. The fence + drain guarantee
   the source stops producing versions below t_m before the snapshot is
   cut. The no-fence mutation control (skip fence, drain and barrier)
   breaks exactly this: writes that commit at the source after the
   snapshot are missing at the destination, and the online checker flags
   the resulting stale read. *)

type stats = {
  mutable started : int;
  mutable completed : int;
  mutable failed : int;
  mutable source_retries : int;
  mutable keys_moved : int;  (* keys shipped, counting re-ships *)
  mutable fence_hold_us : int;
  mutable max_fence_hold_us : int;
}

let stats_create () =
  {
    started = 0;
    completed = 0;
    failed = 0;
    source_retries = 0;
    keys_moved = 0;
    fence_hold_us = 0;
    max_fence_hold_us = 0;
  }

type hooks = {
  h_now : unit -> int;
  h_sleep : int -> (unit -> unit) -> unit;
  h_sources : lo:int -> hi:int -> dst:int -> int list;
      (* shards currently owning keys in the range, destination excluded *)
  h_fence : src:int -> lo:int -> hi:int -> unit;
  h_fence_ok : src:int -> lo:int -> hi:int -> bool;
      (* is the fence still standing (survives only on a leader that never
         rebuilt since h_fence)? *)
  h_drained : src:int -> lo:int -> hi:int -> bool;
  h_cut : src:int -> int;
      (* pick t_m for this source and advance its write watermark to it *)
  h_ship : src:int -> lo:int -> hi:int -> tm:int -> (int -> unit) -> unit;
      (* snapshot + durable logs + install at destination; acks with the
         number of keys shipped. May never ack (lost message / deposed
         leader) — the driver times out. *)
  h_barrier : tm:int -> (unit -> unit) -> unit;
      (* real-time barrier: continue once tm < TT.earliest *)
  h_commit : lo:int -> hi:int -> dst:int -> tm:int -> int;
      (* install the assignment in the directory; returns the new epoch *)
  h_unfence : src:int -> unit;
}

type result = {
  r_ok : bool;
  r_epoch : int;  (* -1 on failure *)
  r_tm : int;
  r_sources : int list;
  r_keys_moved : int;
}

let run hooks ?(tracer = Obs.Trace.disabled) ?(no_fence = false) ?(poll_us = 500)
    ?(attempt_timeout_us = 2_000_000) ?(drain_timeout_us = 120_000_000)
    ?(max_retries = 16) ~stats ~lo ~hi ~dst k =
  stats.started <- stats.started + 1;
  let sp =
    Obs.Trace.begin_span tracer ~kind:Obs.Trace.Migration
      ~name:(Printf.sprintf "migrate[%d,%d)->%d" lo hi dst)
      ~ts:(hooks.h_now ()) ~site:dst
  in
  let sources = hooks.h_sources ~lo ~hi ~dst in
  let fenced_at : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let moved = ref 0 in
  let retries_left = ref max_retries in
  let unfence_all () =
    List.iter
      (fun src ->
        (match Hashtbl.find_opt fenced_at src with
        | Some t0 ->
          let held = hooks.h_now () - t0 in
          stats.fence_hold_us <- stats.fence_hold_us + held;
          if held > stats.max_fence_hold_us then stats.max_fence_hold_us <- held;
          Hashtbl.remove fenced_at src
        | None -> ());
        hooks.h_unfence ~src)
      sources
  in
  let finish ok ~epoch ~tm =
    unfence_all ();
    if ok then stats.completed <- stats.completed + 1
    else stats.failed <- stats.failed + 1;
    stats.keys_moved <- stats.keys_moved + !moved;
    Obs.Trace.end_span tracer sp ~ts:(hooks.h_now ());
    k { r_ok = ok; r_epoch = epoch; r_tm = tm; r_sources = sources; r_keys_moved = !moved }
  in
  let give_up () = finish false ~epoch:(-1) ~tm:(-1) in
  let rec do_source src k_done =
    if (not no_fence) && not (hooks.h_fence_ok ~src ~lo ~hi) then begin
      hooks.h_fence ~src ~lo ~hi;
      if not (Hashtbl.mem fenced_at src) then
        Hashtbl.replace fenced_at src (hooks.h_now ())
    end;
    drain src (hooks.h_now ()) k_done
  and drain src t0 k_done =
    if no_fence || hooks.h_drained ~src ~lo ~hi then cut_and_ship src k_done
    else if not (hooks.h_fence_ok ~src ~lo ~hi) then
      (* leader rebuilt mid-drain and forgot the fence: start over *)
      retry src k_done
    else if hooks.h_now () - t0 > drain_timeout_us then
      (* Faults can leave an in-range participant prepared with nobody left
         to decide it; a drain that cannot finish must not spin forever and
         pin the fence — burn a retry (give_up when they run out). *)
      retry src k_done
    else hooks.h_sleep poll_us (fun () -> drain src t0 k_done)
  and retry src k_done =
    stats.source_retries <- stats.source_retries + 1;
    if !retries_left <= 0 then give_up ()
    else begin
      decr retries_left;
      do_source src k_done
    end
  and cut_and_ship src k_done =
    let tm = hooks.h_cut ~src in
    let settled = ref false in
    hooks.h_sleep attempt_timeout_us (fun () ->
        if not !settled then begin
          settled := true;
          retry src k_done
        end);
    hooks.h_ship ~src ~lo ~hi ~tm (fun n ->
        if not !settled then begin
          settled := true;
          moved := !moved + n;
          k_done tm
        end)
  in
  let rec phase srcs tms =
    match srcs with
    | src :: rest -> do_source src (fun tm -> phase rest (tm :: tms))
    | [] ->
      let tm = List.fold_left max (hooks.h_now ()) tms in
      let commit_point () =
        (* Fence re-verification and the epoch commit share one event, so
           no failover can sneak between the check and the commit. *)
        let lost =
          if no_fence then []
          else List.filter (fun src -> not (hooks.h_fence_ok ~src ~lo ~hi)) sources
        in
        if lost = [] then begin
          let epoch = hooks.h_commit ~lo ~hi ~dst ~tm in
          finish true ~epoch ~tm
        end
        else if !retries_left < List.length lost then give_up ()
        else begin
          retries_left := !retries_left - List.length lost;
          stats.source_retries <- stats.source_retries + List.length lost;
          phase lost tms
        end
      in
      if no_fence then commit_point () else hooks.h_barrier ~tm commit_point
  in
  if sources = [] then begin
    (* nothing to move (destination already owns the whole range): the
       epoch bump still records the assignment *)
    let tm = hooks.h_now () in
    let epoch = hooks.h_commit ~lo ~hi ~dst ~tm in
    finish true ~epoch ~tm
  end
  else phase sources []
