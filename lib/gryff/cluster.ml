type op_kind = Read | Write | Rmw

type record = {
  g_proc : int;
  g_kind : op_kind;
  g_key : int;
  g_observed : int option;
  g_written : int option;
  g_cs : Carstamp.t;
  g_inv : int;
  g_resp : int;
}

type t = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  config : Config.t;
  pctx : Protocol.ctx;
  mutable next_proc : int;
  mutable next_value : int;
  mutable record_list : record list;
  mutable record_hook : record -> unit;
}

let create engine ~rng (config : Config.t) =
  let net =
    Sim.Net.create engine ~rng:(Sim.Rng.split rng) ~rtt_ms:config.Config.rtt_ms
      ~jitter:config.Config.jitter ()
  in
  let pctx = Protocol.make_ctx engine net config in
  {
    engine;
    net;
    config;
    pctx;
    next_proc = 0;
    next_value = 1_000_000_000;
    record_list = [];
    record_hook = ignore;
  }

let engine t = t.engine

let config t = t.config

let ctx t = t.pctx

let net t = t.net

let fresh_proc t =
  let p = t.next_proc in
  t.next_proc <- p + 1;
  p

let fresh_value t =
  let v = t.next_value in
  t.next_value <- v + 1;
  v

let record t r =
  t.record_list <- r :: t.record_list;
  t.record_hook r

let set_record_hook t f = t.record_hook <- f

let records t = Array.of_list (List.rev t.record_list)

(* Verify each key's subhistory in carstamp order. Carstamps are dense-ranked
   into witness timestamps; mutators sort before the reads of their value. *)
let check_history_of t records =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let prev = try Hashtbl.find by_key r.g_key with Not_found -> [] in
      Hashtbl.replace by_key r.g_key (r :: prev))
    records;
  let mode = match t.config.Config.mode with Config.Lin -> `Strict | Config.Rsc -> `Rss in
  let check_key key rs =
    let stamps =
      List.map (fun r -> r.g_cs) rs
      |> List.sort_uniq Carstamp.compare
      |> Array.of_list
    in
    let rank cs =
      (* binary search for the dense rank *)
      let lo = ref 0 and hi = ref (Array.length stamps - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Carstamp.compare stamps.(mid) cs < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let key_name = string_of_int key in
    let txns =
      List.map
        (fun r ->
          let reads =
            match r.g_kind with
            | Read | Rmw -> [ (key_name, r.g_observed) ]
            | Write -> []
          in
          let writes =
            match (r.g_kind, r.g_written) with
            | (Write | Rmw), Some v -> [ (key_name, v) ]
            | (Write | Rmw), None -> []
            | Read, _ -> []
          in
          {
            Rss_core.Witness.proc = r.g_proc;
            reads;
            writes;
            inv = r.g_inv;
            resp = r.g_resp;
            ts = rank r.g_cs;
            rank = (match r.g_kind with Read -> 1 | Write | Rmw -> 0);
          })
        rs
      |> Array.of_list
    in
    match Rss_core.Witness.check ~mode txns with
    | Ok () -> Ok ()
    | Error m -> Error (Fmt.str "key %d: %s" key m)
  in
  Hashtbl.fold
    (fun key rs acc -> match acc with Error _ -> acc | Ok () -> check_key key rs)
    by_key (Ok ())

let check_history t = check_history_of t t.record_list

type stats = {
  reads : int;
  read_second_round : int;
  deps_created : int;
  writes : int;
  rmws : int;
  rmw_slow : int;
  messages : int;
}

let stats t =
  {
    reads = t.pctx.Protocol.n_reads;
    read_second_round = t.pctx.Protocol.n_read_second_round;
    deps_created = t.pctx.Protocol.n_deps_created;
    writes = t.pctx.Protocol.n_writes;
    rmws = t.pctx.Protocol.n_rmws;
    rmw_slow = t.pctx.Protocol.n_rmw_slow;
    messages = Sim.Net.messages_sent t.net;
  }

let set_tracer t tracer = Protocol.set_tracer t.pctx tracer

let tracer t = t.pctx.Protocol.tracer

let enable_retrans t ~rng ?timeout_us () =
  Protocol.enable_retrans t.pctx ~rng ?timeout_us ()

(* ------------------------------------------------------------------ *)
(* Overload & gray-failure controls                                   *)
(* ------------------------------------------------------------------ *)

let stations t = Protocol.stations t.pctx

let set_site_slowdown t ~site ~factor =
  Protocol.set_site_slowdown t.pctx ~site ~factor

let clear_slowdowns t = Protocol.clear_slowdowns t.pctx

let set_admission t limits = Protocol.set_admission t.pctx limits

let set_drop_expired t on = Protocol.set_drop_expired t.pctx on

let set_read_fanout t fanout = Protocol.set_read_fanout t.pctx fanout

let set_hedge_us t us = Protocol.set_hedge_us t.pctx us

let set_retry_budget t budget = Protocol.set_retry_budget t.pctx budget

type flow_stats = {
  expired : int;
  shed : int;
  abandoned : int;
  hedges : int;
  hedge_wins : int;
}

let flow_stats t =
  {
    expired = t.pctx.Protocol.n_expired;
    shed = t.pctx.Protocol.n_shed;
    abandoned = t.pctx.Protocol.n_abandoned;
    hedges = t.pctx.Protocol.n_hedges;
    hedge_wins = t.pctx.Protocol.n_hedge_wins;
  }

type retrans_stats = { rpc_calls : int; rpc_retries : int; rpc_exhausted : int }

let retrans_stats t =
  match t.pctx.Protocol.retrans with
  | None -> { rpc_calls = 0; rpc_retries = 0; rpc_exhausted = 0 }
  | Some r ->
    {
      rpc_calls = Sim.Rpc.calls r;
      rpc_retries = Sim.Rpc.retries r;
      rpc_exhausted = Sim.Rpc.exhausted r;
    }
