(** One Gryff replica: the register store (value + carstamp per key) and the
    EPaxos-style instance space used by read-modify-writes.

    Register state is mergeable: {!apply} keeps the value with the largest
    carstamp, so applications are idempotent and commute — exactly what the
    shared-register protocol and the RSC dependency piggyback rely on. *)

type value = int

type instance_id = int * int  (** (coordinator replica, local counter) *)

type status = Preaccepted | Accepted | Committed | Executed

type instance = {
  inst_id : instance_id;
  i_key : int;
  i_f : value option -> value;
  mutable i_seq : int;
  mutable i_deps : instance_id list;
  mutable i_base : value option * Carstamp.t;
  mutable i_status : status;
  mutable i_result : (value * Carstamp.t) option;
  mutable i_observed : value option;  (** the base value f was applied to *)
}

type t = {
  replica_id : int;
  station : Sim.Station.t;
  values : (int, value option * Carstamp.t) Hashtbl.t;
  instances : (instance_id, instance) Hashtbl.t;
  per_key : (int, instance_id list) Hashtbl.t;
  exec_tail : (int, value * Carstamp.t) Hashtbl.t;
      (** result of the most recently executed rmw per key *)
  mutable next_inst : int;
  mutable executed_hook : instance -> unit;
      (** fired after this replica executes any instance (protocol replies to
          the rmw's client from its coordinator here) *)
}

val create : Sim.Engine.t -> Config.t -> replica_id:int -> t

val get : t -> int -> value option * Carstamp.t

val apply : t -> key:int -> value:value -> cs:Carstamp.t -> unit
(** Keep the larger carstamp; idempotent. *)

val fresh_instance :
  t -> key:int -> f:(value option -> value) -> instance
(** Allocate and record a pre-accepted instance with local seq/deps/base
    (Algorithm 5, lines 11-16). *)

val merge_preaccept :
  t -> inst_id:instance_id -> key:int -> f:(value option -> value) -> seq:int ->
  deps:instance_id list -> base:value option * Carstamp.t ->
  int * instance_id list * (value option * Carstamp.t)
(** A non-coordinator's PreAccept handling (lines 19-28): record the
    instance, return the locally-augmented attributes. *)

val record_decision :
  t -> inst_id:instance_id -> key:int -> f:(value option -> value) -> seq:int ->
  deps:instance_id list -> base:value option * Carstamp.t -> status ->
  unit
(** Record Accept/Commit attributes (creating the instance if unknown), then
    execute every instance whose dependencies allow (on commit). *)

val try_execute : t -> unit
(** Deterministically execute committed instances, EPaxos-style: an instance
    runs only once its whole dependency closure is committed; strongly
    connected components run dependencies-first, members in (seq, id) order.
    Results apply to the register store. *)
