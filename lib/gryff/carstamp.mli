(** Consensus-after-register timestamps ("carstamps", Gryff §3).

    A carstamp [(ts, cid, rmwc)] names a position in a key's total order of
    mutations: register writes advance [ts] (tie-broken by the writer's
    client id) and reset [rmwc]; read-modify-writes {e inherit their base's}
    [(ts, cid)] and advance [rmwc]. Order is lexicographic on
    [(ts, cid, rmwc)], so an rmw slots directly after the exact write it
    observed — before any concurrent write with a higher client id — which
    is what makes the carstamp order a legal serialization (the triple
    cs_w < cs_w' < cs_rmw with the rmw reading w is unrepresentable;
    Gryff's Lemma B.10). Carstamps are per-key. *)

type t = { ts : int; cid : int; rmwc : int }

val zero : t

val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val equal : t -> t -> bool

val for_write : base:t -> cid:int -> t
(** [ts = base.ts + 1], [rmwc = 0]. *)

val for_rmw : base:t -> t
(** Inherits [(ts, cid)] from the base, [rmwc = base.rmwc + 1]. Interfering
    rmws are serialized by the consensus layer, so chains stay distinct. *)

val pp : Format.formatter -> t -> unit

val pack : t -> int
(** Order-isomorphic packing into a single non-negative int
    ([compare a b] agrees with [Int.compare (pack a) (pack b)]): 22 bits of
    [ts], 20 of [cid], 20 of [rmwc]. Raises [Invalid_argument] if a
    component is out of range — far beyond any simulated run's reach. *)
