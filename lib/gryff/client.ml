type t = {
  cluster : Cluster.t;
  site : int;
  proc : int;
  unsafe_no_deps : bool;
  mutable deps : Protocol.dep list;
}

let create ?(unsafe_no_deps = false) cluster ~site =
  { cluster; site; proc = Cluster.fresh_proc cluster; unsafe_no_deps; deps = [] }

let proc t = t.proc

let site t = t.site

let deps t = t.deps

(* Keep at most one dependency per key — the newest. *)
let add_dep t (d : Protocol.dep) =
  let others = List.filter (fun (o : Protocol.dep) -> o.Protocol.d_key <> d.Protocol.d_key) t.deps in
  let d =
    match List.find_opt (fun (o : Protocol.dep) -> o.Protocol.d_key = d.Protocol.d_key) t.deps with
    | Some o when Carstamp.(o.Protocol.d_cs > d.Protocol.d_cs) -> o
    | Some _ | None -> d
  in
  t.deps <- d :: others

let now t = Sim.Engine.now (Cluster.engine t.cluster)

let op_span t ~name ~ts =
  let tr = Cluster.tracer t.cluster in
  if Obs.Trace.enabled tr then
    Obs.Trace.begin_span ~parent:Obs.Trace.none ~site:t.site tr
      ~kind:Obs.Trace.Client_op ~name ~ts
  else Obs.Trace.none

let read ?deadline_us t ~key k =
  let inv = now t in
  let deps = t.deps in
  (* The read phase propagates the pending dependencies to a quorum. *)
  t.deps <- [];
  let tr = Cluster.tracer t.cluster in
  let sp = op_span t ~name:"gryff.read" ~ts:inv in
  Obs.Trace.with_current tr sp (fun () ->
      Protocol.read ?deadline_us (Cluster.ctx t.cluster) ~client_site:t.site ~cid:t.proc ~deps
        ~key (fun res ->
          let resp = now t in
          Obs.Trace.end_span tr sp ~ts:resp;
          (* The deliberately broken control: dropping the dependency disables
             RSC's deferred write-back, exactly the fence the model needs. *)
          (match res.Protocol.r_dep with
          | None -> ()
          | Some d -> if not t.unsafe_no_deps then add_dep t d);
          Cluster.record t.cluster
            {
              Cluster.g_proc = t.proc;
              g_kind = Cluster.Read;
              g_key = key;
              g_observed = res.Protocol.r_value;
              g_written = None;
              g_cs = res.Protocol.r_cs;
              g_inv = inv;
              g_resp = resp;
            };
          k res))

let write ?on_apply ?deadline_us t ~key ~value k =
  let inv = now t in
  let deps = t.deps in
  (* The first phase propagates the dependencies to a quorum. *)
  t.deps <- [];
  let tr = Cluster.tracer t.cluster in
  let sp = op_span t ~name:"gryff.write" ~ts:inv in
  Obs.Trace.with_current tr sp (fun () ->
      Protocol.write ?on_apply ?deadline_us (Cluster.ctx t.cluster) ~client_site:t.site
        ~cid:t.proc ~deps ~key ~value (fun res ->
          let resp = now t in
          Obs.Trace.end_span tr sp ~ts:resp;
          Cluster.record t.cluster
            {
              Cluster.g_proc = t.proc;
              g_kind = Cluster.Write;
              g_key = key;
              g_observed = None;
              g_written = Some value;
              g_cs = res.Protocol.w_cs;
              g_inv = inv;
              g_resp = resp;
            };
          k res))

let rmw t ~key ~f k =
  let inv = now t in
  let deps = t.deps in
  t.deps <- [];
  let tr = Cluster.tracer t.cluster in
  let sp = op_span t ~name:"gryff.rmw" ~ts:inv in
  Obs.Trace.with_current tr sp (fun () ->
      Protocol.rmw (Cluster.ctx t.cluster) ~client_site:t.site ~cid:t.proc ~deps
        ~key ~f (fun res ->
          let resp = now t in
          Obs.Trace.end_span tr sp ~ts:resp;
          Cluster.record t.cluster
            {
              Cluster.g_proc = t.proc;
              g_kind = Cluster.Rmw;
              g_key = key;
              g_observed = res.Protocol.m_observed;
              g_written = Some res.Protocol.m_value;
              g_cs = res.Protocol.m_cs;
              g_inv = inv;
              g_resp = resp;
            };
          k res))

let fence t k =
  let deps = t.deps in
  t.deps <- [];
  Protocol.fence (Cluster.ctx t.cluster) ~client_site:t.site ~deps k

let absorb_deps t incoming = List.iter (add_dep t) incoming
