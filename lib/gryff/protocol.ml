type dep = { d_key : int; d_value : int; d_cs : Carstamp.t }

type rmw_pending = {
  mutable p_local : Replica.instance option;  (* coordinator executed *)
  mutable p_acks : int;  (* remote replicas that applied the result *)
  p_needed : int;
  p_reply : Replica.instance -> unit;
}

type ctx = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  config : Config.t;
  replicas : Replica.t array;
  rmw_waiters : (Replica.instance_id, rmw_pending) Hashtbl.t;
  mutable n_reads : int;
  mutable n_read_second_round : int;
  mutable n_deps_created : int;
  mutable n_writes : int;
  mutable n_rmws : int;
  mutable n_rmw_slow : int;
  mutable retrans : Sim.Rpc.t option;
      (* per-request retransmission for the idempotent phases; [None] keeps
         the exact failure-free wire behavior *)
  mutable tracer : Obs.Trace.t;
  (* Overload robustness — all default-off; armed via Harness.Env.flow. *)
  mutable drop_expired : bool;
  mutable fanout : read_fanout;
  mutable hedge_us : int;
  mutable retry_budget : Sim.Rpc.Budget.t option;
  mutable n_expired : int;  (* requests dropped expired at dequeue *)
  mutable n_shed : int;  (* requests NACKed by admission control *)
  mutable n_abandoned : int;  (* per-replica legs given up (shed, no budget) *)
  mutable n_hedges : int;  (* hedge fan-outs actually issued *)
  mutable n_hedge_wins : int;  (* hedge replies that completed the quorum *)
}

and read_fanout = Fan_all | Fan_quorum | Hedged

(* A replica's refusal to serve a request, delivered back to the sender
   when it supplied a [reject] continuation: already past its deadline at
   dequeue, or shed by admission control with a server-suggested backoff. *)
type server_reject = Expired | Pushback of Sim.Station.pushback

let make_ctx engine net config =
  let replicas =
    Array.init config.Config.n_replicas (fun replica_id ->
        Replica.create engine config ~replica_id)
  in
  let ctx =
    {
      engine;
      net;
      config;
      replicas;
      rmw_waiters = Hashtbl.create 256;
      n_reads = 0;
      n_read_second_round = 0;
      n_deps_created = 0;
      n_writes = 0;
      n_rmws = 0;
      n_rmw_slow = 0;
      retrans = None;
      tracer = Obs.Trace.disabled;
      drop_expired = false;
      fanout = Fan_all;
      hedge_us = 0;
      retry_budget = None;
      n_expired = 0;
      n_shed = 0;
      n_abandoned = 0;
      n_hedges = 0;
      n_hedge_wins = 0;
    }
  in
  (* An rmw completes only once its result is applied at a quorum: the
     coordinator's own execution plus execution acks from other replicas —
     otherwise a subsequent read's quorum could miss a "completed" rmw. *)
  let maybe_reply inst_id (p : rmw_pending) =
    match p.p_local with
    | Some inst when p.p_acks >= p.p_needed ->
      Hashtbl.remove ctx.rmw_waiters inst_id;
      p.p_reply inst
    | Some _ | None -> ()
  in
  Array.iter
    (fun (r : Replica.t) ->
      r.Replica.executed_hook <-
        (fun inst ->
          let inst_id = inst.Replica.inst_id in
          let coord = fst inst_id in
          if coord = r.Replica.replica_id then (
            match Hashtbl.find_opt ctx.rmw_waiters inst_id with
            | Some p ->
              p.p_local <- Some inst;
              maybe_reply inst_id p
            | None -> ())
          else
            (* execution ack back to the coordinator *)
            Sim.Net.post ~bytes:32 ctx.net ~src:r.Replica.replica_id ~dst:coord
              (fun env_idx ->
                let station = ctx.replicas.(coord).Replica.station in
                let cost =
                  Sim.Station.amortized
                    ~full:(Sim.Station.service_time_us station) env_idx
                in
                Sim.Station.submit ~cost station (fun () ->
                    match Hashtbl.find_opt ctx.rmw_waiters inst_id with
                    | Some p ->
                      p.p_acks <- p.p_acks + 1;
                      maybe_reply inst_id p
                    | None -> ()))))
    replicas;
  ctx

(* Replica- and client-bound messages ride [Sim.Net.post]: with a batching
   policy armed, a client's quorum fan-out to one replica, the replica's
   replies, and write-back propagates coalesce per directed link into
   envelopes whose members amortize the replica's station cost. With
   batching off, [post] is [send] and behaviour is byte-identical. *)
let to_client ctx ~src ?(bytes = 64) ~dst handler =
  Sim.Net.post ~bytes ctx.net ~src ~dst (fun _env_idx -> handler ())

(* [expires] is the op's absolute deadline riding the request: the station's
   queue is its busy_until horizon with deterministic FIFO service, so the
   projected start (now + backlog) at enqueue equals the dequeue-time state
   exactly — work that would only start past its deadline is dropped before
   any cost is charged. [reject] (client-facing request legs only) gets an
   explicit NACK so the sender can back off instead of timing out. *)
let to_replica ctx ~src ?(bytes = 64) ?expires ?reject replica_id handler =
  let r = ctx.replicas.(replica_id) in
  Sim.Net.post ~bytes ctx.net ~src ~dst:replica_id (fun env_idx ->
      let station = r.Replica.station in
      let nack rej =
        match reject with
        | None -> ()
        | Some k ->
          to_client ctx ~src:replica_id ~bytes:32 ~dst:src (fun () -> k rej)
      in
      let expired =
        ctx.drop_expired
        && (match expires with
           | Some e -> Sim.Engine.now ctx.engine + Sim.Station.backlog_us station > e
           | None -> false)
      in
      if expired then begin
        ctx.n_expired <- ctx.n_expired + 1;
        nack Expired
      end
      else begin
        let cost =
          Sim.Station.amortized
            ~full:(Sim.Station.service_time_us station) env_idx
        in
        let tr = ctx.tracer in
        let job =
          if Obs.Trace.enabled tr then begin
            (* Carry the ambient span across the station's job queue. *)
            let sp = Obs.Trace.current tr in
            fun () -> Obs.Trace.with_current tr sp (fun () -> handler r)
          end
          else fun () -> handler r
        in
        match reject with
        | None -> Sim.Station.submit ~cost station job
        | Some _ -> (
          match Sim.Station.try_submit ~cost station job with
          | Sim.Station.Admitted -> ()
          | Sim.Station.Shed pb ->
            ctx.n_shed <- ctx.n_shed + 1;
            nack (Pushback pb))
      end)

(* One request/reply exchange with a replica. With retransmission armed
   ([retrans <> None]) the exchange rides an {!Sim.Rpc} call: a lost request
   or reply is re-sent after a deadline with capped backoff, so the phase
   survives up to f crashed replicas (the quorum collector only needs the
   live ones to answer). Only valid for idempotent handlers — base reads,
   carstamp queries and propagates are (carstamp max-merge makes re-applying
   a write a no-op); rmw pre-accepts are not and stay bare. *)
let exchange ctx ~src ?bytes ?expires replica_id ~(request : Replica.t -> 'a)
    ~(reply : 'a -> unit) =
  let attempt deliver =
    (* With admission control armed, a shed leg re-offers to the same
       replica after the server-suggested backoff (the quorum keeps
       forming from the others meanwhile), bounded by the retry budget and
       a hard cap; giving up just leaves this replica out of the quorum.
       An expired leg gives up outright — its deadline has passed. *)
    let sends = ref 0 in
    let rec send () =
      incr sends;
      let reject = function
        | Expired -> ()
        | Pushback pb ->
          let budgeted =
            match ctx.retry_budget with
            | None -> true
            | Some b -> Sim.Rpc.Budget.try_take b
          in
          let in_time =
            match expires with
            | None -> true
            | Some e -> Sim.Engine.now ctx.engine + pb.retry_after_us < e
          in
          if !sends < 8 && budgeted && in_time then
            Sim.Engine.schedule ~kind:"txn.backoff" ctx.engine
              ~after:pb.retry_after_us send
          else ctx.n_abandoned <- ctx.n_abandoned + 1
      in
      to_replica ctx ~src ?bytes ?expires ~reject replica_id (fun r ->
          let resp = request r in
          to_client ctx ~src:replica_id ~dst:src (fun () -> deliver resp))
    in
    send ()
  in
  match ctx.retrans with
  | None -> attempt reply
  | Some rpc ->
    Sim.Rpc.call ~name:"rpc.exchange" rpc
      ~attempt:(fun ~attempt:_ ~ok -> attempt ok)
      ~on_result:(function Some resp -> reply resp | None -> ())

let enable_retrans ctx ~rng ?(timeout_us = 300_000) () =
  let rpc = Sim.Rpc.create ctx.engine ~rng ~timeout_us ~max_attempts:8 () in
  Sim.Rpc.set_tracer rpc ctx.tracer;
  ctx.retrans <- Some rpc

let set_tracer ctx tracer =
  ctx.tracer <- tracer;
  Sim.Net.set_tracer ctx.net tracer;
  match ctx.retrans with
  | Some rpc -> Sim.Rpc.set_tracer rpc tracer
  | None -> ()

let apply_deps (r : Replica.t) deps =
  List.iter
    (fun { d_key; d_value; d_cs } -> Replica.apply r ~key:d_key ~value:d_value ~cs:d_cs)
    deps

(* Collect the first [quorum] replies; later ones are dropped. *)
let quorum_collector ~quorum k =
  let got = ref [] in
  let n = ref 0 in
  fun reply ->
    incr n;
    if !n <= quorum then begin
      got := reply :: !got;
      if !n = quorum then k !got
    end

(* Propagate (key, value, cs) to a quorum — a read's write-back phase, a
   write's second phase, or a fence. *)
let propagate ?expires ctx ~client_site ~key ~value ~cs k =
  let quorum = Config.quorum ctx.config in
  let on_ack = quorum_collector ~quorum (fun _ -> k ()) in
  Array.iteri
    (fun i _ ->
      exchange ctx ~src:client_site ?expires i
        ~request:(fun r ->
          match value with
          | Some v -> Replica.apply r ~key ~value:v ~cs
          | None -> ())
        ~reply:(fun () -> on_ack ()))
    ctx.replicas

(* ------------------------------------------------------------------ *)
(* Reads (Algorithm 3 / 4)                                             *)
(* ------------------------------------------------------------------ *)

type read_result = {
  r_value : int option;
  r_cs : Carstamp.t;
  r_rounds : int;
  r_dep : dep option;
}

let read ?deadline_us ctx ~client_site ~cid:_ ~deps ~key k =
  ctx.n_reads <- ctx.n_reads + 1;
  let quorum = Config.quorum ctx.config in
  let expires =
    match deadline_us with
    | Some d when ctx.drop_expired -> Some (Sim.Engine.now ctx.engine + d)
    | Some _ | None -> None
  in
  let complete = ref false in
  let hedge_won = ref false in
  let process replies =
    complete := true;
    if !hedge_won then ctx.n_hedge_wins <- ctx.n_hedge_wins + 1;
    let best_v, best_cs =
      match replies with
      | first :: rest ->
        List.fold_left
          (fun (bv, bc) (v, cs) -> if Carstamp.(cs > bc) then (v, cs) else (bv, bc))
          first rest
      | [] -> assert false (* quorum_collector delivers exactly [quorum] replies *)
    in
    let all_equal = List.for_all (fun (_, cs) -> Carstamp.equal cs best_cs) replies in
    if all_equal then
      (* The chosen carstamp is already at a quorum: one round in both
         modes (Gryff's fast-path read optimization). *)
      k { r_value = best_v; r_cs = best_cs; r_rounds = 1; r_dep = None }
    else begin
      match (ctx.config.Config.mode, best_v) with
      | Config.Lin, Some v ->
        (* Linearizability requires the write-back phase before returning. *)
        ctx.n_read_second_round <- ctx.n_read_second_round + 1;
        let tr = ctx.tracer in
        let sp =
          if Obs.Trace.enabled tr then
            Obs.Trace.begin_span ~site:client_site tr ~kind:Obs.Trace.Phase
              ~name:"gryff.read.round2" ~ts:(Sim.Engine.now ctx.engine)
          else Obs.Trace.none
        in
        Obs.Trace.with_current tr sp (fun () ->
            propagate ?expires ctx ~client_site ~key ~value:(Some v) ~cs:best_cs
              (fun () ->
                Obs.Trace.end_span tr sp ~ts:(Sim.Engine.now ctx.engine);
                k { r_value = best_v; r_cs = best_cs; r_rounds = 2; r_dep = None }))
      | Config.Lin, None ->
        k { r_value = None; r_cs = best_cs; r_rounds = 1; r_dep = None }
      | Config.Rsc, Some v ->
        (* RSC: defer the write-back by piggybacking on the next op. *)
        ctx.n_deps_created <- ctx.n_deps_created + 1;
        let tr = ctx.tracer in
        if Obs.Trace.enabled tr then
          Obs.Trace.instant ~site:client_site tr ~kind:Obs.Trace.Phase
            ~name:"gryff.read.defer" ~ts:(Sim.Engine.now ctx.engine);
        k
          {
            r_value = best_v;
            r_cs = best_cs;
            r_rounds = 1;
            r_dep = Some { d_key = key; d_value = v; d_cs = best_cs };
          }
      | Config.Rsc, None ->
        k { r_value = None; r_cs = best_cs; r_rounds = 1; r_dep = None }
    end
  in
  let on_reply = quorum_collector ~quorum process in
  let send_to ~hedge i =
    exchange ctx ~src:client_site ?expires i
      ~request:(fun r ->
        apply_deps r deps;
        Replica.get r key)
      ~reply:(fun resp ->
        if hedge && not !complete then hedge_won := true;
        on_reply resp)
  in
  (* Fan-out policy. [Fan_all] (default, the historical behavior) asks every
     replica and keeps the first quorum of replies — maximal implicit
     hedging at maximal message cost. [Fan_quorum] asks only a bare quorum
     chosen by ring locality from the client's site — cheapest, but one
     gray-failed member drags the whole read to its speed. [Hedged] starts
     from the bare quorum and, if the quorum has not completed after
     [hedge_us] (sized to a healthy-run latency percentile), fans out to
     the remaining replicas and lets the first quorum win — the classic
     tail-tolerant middle ground. *)
  let n = Array.length ctx.replicas in
  let ring = List.init n (fun j -> (client_site + j) mod n) in
  match ctx.fanout with
  | Fan_all ->
    (* Replica-id order, NOT ring order: this is the historical behavior
       and seeded schedules are golden-digested against it. *)
    Array.iteri (fun i _ -> send_to ~hedge:false i) ctx.replicas
  | Fan_quorum -> List.iteri (fun j i -> if j < quorum then send_to ~hedge:false i) ring
  | Hedged ->
    List.iteri (fun j i -> if j < quorum then send_to ~hedge:false i) ring;
    let rest = List.filteri (fun j _ -> j >= quorum) ring in
    if rest <> [] then
      Sim.Engine.schedule ~kind:"txn.hedge" ctx.engine ~after:(max 1 ctx.hedge_us)
        (fun () ->
          if not !complete then begin
            ctx.n_hedges <- ctx.n_hedges + 1;
            List.iter (send_to ~hedge:true) rest
          end)

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

type write_result = { w_cs : Carstamp.t }

let write ?(on_apply = fun (_ : Carstamp.t) -> ()) ?deadline_us ctx ~client_site
    ~cid ~deps ~key ~value k =
  ctx.n_writes <- ctx.n_writes + 1;
  let quorum = Config.quorum ctx.config in
  let expires =
    match deadline_us with
    | Some d when ctx.drop_expired -> Some (Sim.Engine.now ctx.engine + d)
    | Some _ | None -> None
  in
  let phase2 base_cs =
    let cs = Carstamp.for_write ~base:base_cs ~cid in
    (* The value is about to reach replicas: from here on the write can be
       observed even if the client never hears the acks, so chaos audits
       record the chosen carstamp for post-hoc history accounting. *)
    on_apply cs;
    propagate ?expires ctx ~client_site ~key ~value:(Some value) ~cs (fun () ->
        k { w_cs = cs })
  in
  let process replies =
    phase2 (List.fold_left (fun acc cs -> Carstamp.max acc cs) Carstamp.zero replies)
  in
  let on_reply = quorum_collector ~quorum process in
  Array.iteri
    (fun i _ ->
      exchange ctx ~src:client_site ?expires i
        ~request:(fun r ->
          apply_deps r deps;
          snd (Replica.get r key))
        ~reply:on_reply)
    ctx.replicas

(* ------------------------------------------------------------------ *)
(* Read-modify-writes (Algorithm 5)                                    *)
(* ------------------------------------------------------------------ *)

type rmw_result = {
  m_observed : int option;
  m_value : int;
  m_cs : Carstamp.t;
  m_slow : bool;
}

let same_attrs (seq, deps, base) (seq', deps', base') =
  seq = seq'
  && List.sort compare deps = List.sort compare deps'
  && Carstamp.equal (snd base) (snd base')

let rmw ctx ~client_site ~cid:_ ~deps ~key ~f k =
  ctx.n_rmws <- ctx.n_rmws + 1;
  let coord_id = client_site in
  (* coordinate at the local replica *)
  to_replica ctx ~src:client_site coord_id (fun coord ->
      apply_deps coord deps;
      let inst = Replica.fresh_instance coord ~key ~f in
      let inst_id = inst.Replica.inst_id in
      let orig = (inst.Replica.i_seq, inst.Replica.i_deps, inst.Replica.i_base) in
      let commit ~slow (seq, deps, base) =
        if slow then begin
          ctx.n_rmw_slow <- ctx.n_rmw_slow + 1;
          let tr = ctx.tracer in
          if Obs.Trace.enabled tr then
            Obs.Trace.instant ~site:coord_id tr ~kind:Obs.Trace.Phase
              ~name:"gryff.rmw.slow" ~ts:(Sim.Engine.now ctx.engine)
        end;
        let reply (i : Replica.instance) =
          match i.Replica.i_result with
          | Some (v, cs) ->
            to_client ctx ~src:coord_id ~dst:client_site (fun () ->
                k
                  {
                    m_observed = i.Replica.i_observed;
                    m_value = v;
                    m_cs = cs;
                    m_slow = slow;
                  })
          | None -> assert false
        in
        Hashtbl.replace ctx.rmw_waiters inst_id
          {
            p_local = None;
            p_acks = 0;
            p_needed = Config.quorum ctx.config - 1;
            p_reply = reply;
          };
        Array.iteri
          (fun i _ ->
            if i <> coord_id then
              to_replica ctx ~src:coord_id i (fun r ->
                  Replica.record_decision r ~inst_id ~key ~f ~seq ~deps ~base
                    Replica.Committed))
          ctx.replicas;
        Replica.record_decision coord ~inst_id ~key ~f ~seq ~deps ~base
          Replica.Committed
      in
      let slow_path (seq, deps, base) =
        (* Accept round to a majority with the merged attributes. *)
        let needed = Config.quorum ctx.config - 1 in
        let on_ack = quorum_collector ~quorum:needed (fun _ -> commit ~slow:true (seq, deps, base)) in
        Array.iteri
          (fun i _ ->
            if i <> coord_id then
              to_replica ctx ~src:coord_id i (fun r ->
                  Replica.record_decision r ~inst_id ~key ~f ~seq ~deps ~base
                    Replica.Accepted;
                  to_client ctx ~src:i ~dst:coord_id (fun () -> on_ack ())))
          ctx.replicas
      in
      let needed = Config.fast_quorum ctx.config - 1 in
      let process replies =
        if List.for_all (fun attrs -> same_attrs attrs orig) replies then
          commit ~slow:false orig
        else begin
          let seq, deps, base =
            List.fold_left
              (fun (s, d, b) (s', d', b') ->
                ( max s s',
                  List.sort_uniq compare (d @ d'),
                  if Carstamp.(snd b' > snd b) then b' else b ))
              orig replies
          in
          slow_path (seq, deps, base)
        end
      in
      let on_reply = quorum_collector ~quorum:needed process in
      Array.iteri
        (fun i _ ->
          if i <> coord_id then
            to_replica ctx ~src:coord_id i (fun r ->
                apply_deps r deps;
                let attrs =
                  Replica.merge_preaccept r ~inst_id ~key ~f
                    ~seq:inst.Replica.i_seq ~deps:inst.Replica.i_deps
                    ~base:inst.Replica.i_base
                in
                to_client ctx ~src:i ~dst:coord_id (fun () -> on_reply attrs)))
        ctx.replicas)

let rec fence ctx ~client_site ~deps k =
  match deps with
  | [] -> k ()
  | { d_key; d_value; d_cs } :: rest ->
    propagate ctx ~client_site ~key:d_key ~value:(Some d_value) ~cs:d_cs (fun () ->
        fence ctx ~client_site ~deps:rest k)

(* ------------------------------------------------------------------ *)
(* Overload & gray-failure controls                                    *)
(* ------------------------------------------------------------------ *)

let stations ctx =
  Array.to_list (Array.map (fun r -> r.Replica.station) ctx.replicas)

(* Gray failure: the replica at [site] serves [factor]x slower (sites and
   replicas are 1:1 in this deployment model). *)
let set_site_slowdown ctx ~site ~factor =
  if site >= 0 && site < Array.length ctx.replicas then
    Sim.Station.set_slowdown ctx.replicas.(site).Replica.station factor

let clear_slowdowns ctx =
  Array.iter (fun r -> Sim.Station.set_slowdown r.Replica.station 1) ctx.replicas

let set_admission ctx limits =
  Array.iter (fun r -> Sim.Station.set_limits r.Replica.station limits) ctx.replicas

let set_drop_expired ctx on = ctx.drop_expired <- on

let set_read_fanout ctx fanout = ctx.fanout <- fanout

let set_hedge_us ctx us =
  if us < 0 then invalid_arg "Protocol.set_hedge_us: negative delay";
  ctx.hedge_us <- us

let set_retry_budget ctx budget = ctx.retry_budget <- budget
