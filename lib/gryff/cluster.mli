(** Assembly of a simulated Gryff / Gryff-RSC deployment, with history
    recording and per-key witness checking.

    Carstamps are per-key, so large runs are verified per key: each key's
    operations must be legal, session-monotone, and respect the regular
    real-time constraint in carstamp order (the RSC restriction to one key;
    [Lin] mode checks the full real-time order instead). Cross-key causality
    is exercised by the search-checker tests on small histories. *)

type t

val create : Sim.Engine.t -> rng:Sim.Rng.t -> Config.t -> t

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val ctx : t -> Protocol.ctx
val net : t -> Sim.Net.t

val fresh_proc : t -> int

type op_kind = Read | Write | Rmw

type record = {
  g_proc : int;
  g_kind : op_kind;
  g_key : int;
  g_observed : int option;  (** value read (reads, rmws) *)
  g_written : int option;  (** value written (writes, rmws) *)
  g_cs : Carstamp.t;
  g_inv : int;
  g_resp : int;
}

val record : t -> record -> unit

val set_record_hook : t -> (record -> unit) -> unit
(** Observe every {!record} call as it happens — the feed for online
    checking. One hook at a time; defaults to [ignore]. *)

val fresh_value : t -> int
(** A run-unique value to write (base 1_000_000_000) — keeps reads-from
    derivable without per-test value disciplines. *)

val records : t -> record array

val check_history : t -> (unit, string) result

val check_history_of : t -> record list -> (unit, string) result
(** Check an explicit record set instead of the collected history — chaos
    audits use this to verify deliberately corrupted ("control") histories
    are caught, proving the checker has teeth. *)

(** {2 Tracing} *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Install a span sink cluster-wide (see {!Protocol.set_tracer}); [Client]
    operations add their own root spans. Tracing is passive — it never
    draws randomness or schedules events — so a traced run follows the same
    seeded schedule as an untraced one. *)

val tracer : t -> Obs.Trace.t

(** {2 Run statistics} *)

type stats = {
  reads : int;
  read_second_round : int;
  deps_created : int;
  writes : int;
  rmws : int;
  rmw_slow : int;
  messages : int;
}

val stats : t -> stats

(** {2 Retransmission} *)

val enable_retrans : t -> rng:Sim.Rng.t -> ?timeout_us:int -> unit -> unit
(** Arm per-request retransmission on the idempotent protocol phases (see
    {!Protocol.enable_retrans}); lets clients ride through up to f crashed
    replicas. *)

type retrans_stats = { rpc_calls : int; rpc_retries : int; rpc_exhausted : int }

val retrans_stats : t -> retrans_stats

(** {2 Overload & gray-failure controls}

    Cluster-level passthroughs to {!Protocol}'s flow controls; all
    default-off and byte-identity-preserving when unarmed. *)

val stations : t -> Sim.Station.t list
(** Every replica's station (queue-depth / sojourn recorders live there
    once admission or observation is armed). *)

val set_site_slowdown : t -> site:int -> factor:int -> unit
(** Gray failure: the replica at [site] serves [factor]x slower. *)

val clear_slowdowns : t -> unit

val set_admission : t -> Sim.Station.limits option -> unit
(** Bounded queues + load shedding at every replica; shed request legs
    NACK with a server-suggested backoff (see {!Protocol.set_admission}). *)

val set_drop_expired : t -> bool -> unit
(** Deadline propagation: replicas drop request legs whose riding deadline
    precedes their projected service start. *)

val set_read_fanout : t -> Protocol.read_fanout -> unit
(** Read fan-out policy: [Fan_all] (default, historical), [Fan_quorum], or
    [Hedged] (bare quorum, widened after {!set_hedge_us} µs). *)

val set_hedge_us : t -> int -> unit

val set_retry_budget : t -> Sim.Rpc.Budget.t option -> unit
(** Fleet-wide retry token bucket for shed-leg re-offers. *)

type flow_stats = {
  expired : int;  (** request legs dropped expired at dequeue *)
  shed : int;  (** request legs NACKed by admission control *)
  abandoned : int;  (** legs given up (shed and out of budget/cap) *)
  hedges : int;  (** hedge fan-outs actually issued *)
  hedge_wins : int;  (** hedge replies that completed a quorum *)
}

val flow_stats : t -> flow_stats
