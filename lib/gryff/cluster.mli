(** Assembly of a simulated Gryff / Gryff-RSC deployment, with history
    recording and per-key witness checking.

    Carstamps are per-key, so large runs are verified per key: each key's
    operations must be legal, session-monotone, and respect the regular
    real-time constraint in carstamp order (the RSC restriction to one key;
    [Lin] mode checks the full real-time order instead). Cross-key causality
    is exercised by the search-checker tests on small histories. *)

type t

val create : Sim.Engine.t -> rng:Sim.Rng.t -> Config.t -> t

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val ctx : t -> Protocol.ctx
val net : t -> Sim.Net.t

val fresh_proc : t -> int

type op_kind = Read | Write | Rmw

type record = {
  g_proc : int;
  g_kind : op_kind;
  g_key : int;
  g_observed : int option;  (** value read (reads, rmws) *)
  g_written : int option;  (** value written (writes, rmws) *)
  g_cs : Carstamp.t;
  g_inv : int;
  g_resp : int;
}

val record : t -> record -> unit

val set_record_hook : t -> (record -> unit) -> unit
(** Observe every {!record} call as it happens — the feed for online
    checking. One hook at a time; defaults to [ignore]. *)

val fresh_value : t -> int
(** A run-unique value to write (base 1_000_000_000) — keeps reads-from
    derivable without per-test value disciplines. *)

val records : t -> record array

val check_history : t -> (unit, string) result

val check_history_of : t -> record list -> (unit, string) result
(** Check an explicit record set instead of the collected history — chaos
    audits use this to verify deliberately corrupted ("control") histories
    are caught, proving the checker has teeth. *)

(** {2 Tracing} *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Install a span sink cluster-wide (see {!Protocol.set_tracer}); [Client]
    operations add their own root spans. Tracing is passive — it never
    draws randomness or schedules events — so a traced run follows the same
    seeded schedule as an untraced one. *)

val tracer : t -> Obs.Trace.t

(** {2 Run statistics} *)

type stats = {
  reads : int;
  read_second_round : int;
  deps_created : int;
  writes : int;
  rmws : int;
  rmw_slow : int;
  messages : int;
}

val stats : t -> stats

(** {2 Retransmission} *)

val enable_retrans : t -> rng:Sim.Rng.t -> ?timeout_us:int -> unit -> unit
(** Arm per-request retransmission on the idempotent protocol phases (see
    {!Protocol.enable_retrans}); lets clients ride through up to f crashed
    replicas. *)

type retrans_stats = { rpc_calls : int; rpc_retries : int; rpc_exhausted : int }

val retrans_stats : t -> retrans_stats
