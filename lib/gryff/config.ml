type mode = Lin | Rsc

type t = {
  mode : mode;
  n_replicas : int;
  rtt_ms : float array array;
  service_time_us : int;
  jitter : float;
}

let wan5 ~mode () =
  {
    mode;
    n_replicas = 5;
    rtt_ms = Sim.Topology.wan5.Sim.Topology.rtt_ms;
    service_time_us = 0;
    jitter = 0.02;
  }

let single_dc ~mode ~service_time_us () =
  let n = 5 in
  let rtt_ms = (Sim.Topology.single_dc ~n).Sim.Topology.rtt_ms in
  { mode; n_replicas = n; rtt_ms; service_time_us; jitter = 0.02 }

let quorum t = (t.n_replicas / 2) + 1

let fast_quorum t =
  let f = (t.n_replicas - 1) / 2 in
  f + ((f + 1) / 2)

let site_name t i =
  if t.n_replicas = 5 then Sim.Topology.(site_name wan5 i) else Fmt.str "r%d" i
