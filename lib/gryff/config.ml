type mode = Lin | Rsc

type t = {
  mode : mode;
  n_replicas : int;
  rtt_ms : float array array;
  service_time_us : int;
  jitter : float;
}

let wan5_names = [| "CA"; "VA"; "IR"; "OR"; "JP" |]

(* Table 2 of the paper. *)
let table2 =
  [|
    [| 0.2; 72.0; 151.0; 59.0; 113.0 |];
    [| 72.0; 0.2; 88.0; 93.0; 162.0 |];
    [| 151.0; 88.0; 0.2; 145.0; 220.0 |];
    [| 59.0; 93.0; 145.0; 0.2; 121.0 |];
    [| 113.0; 162.0; 220.0; 121.0; 0.2 |];
  |]

let wan5 ~mode () =
  { mode; n_replicas = 5; rtt_ms = table2; service_time_us = 0; jitter = 0.02 }

let single_dc ~mode ~service_time_us () =
  let n = 5 in
  let rtt_ms = Array.make_matrix n n 0.2 in
  { mode; n_replicas = n; rtt_ms; service_time_us; jitter = 0.02 }

let quorum t = (t.n_replicas / 2) + 1

let fast_quorum t =
  let f = (t.n_replicas - 1) / 2 in
  f + ((f + 1) / 2)

let site_name t i = if t.n_replicas = 5 then wan5_names.(i) else Fmt.str "r%d" i
