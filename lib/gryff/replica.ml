type value = int

type instance_id = int * int

type status = Preaccepted | Accepted | Committed | Executed

type instance = {
  inst_id : instance_id;
  i_key : int;
  i_f : value option -> value;
  mutable i_seq : int;
  mutable i_deps : instance_id list;
  mutable i_base : value option * Carstamp.t;
  mutable i_status : status;
  mutable i_result : (value * Carstamp.t) option;
  mutable i_observed : value option;
}

type t = {
  replica_id : int;
  station : Sim.Station.t;
  values : (int, value option * Carstamp.t) Hashtbl.t;
  instances : (instance_id, instance) Hashtbl.t;
  per_key : (int, instance_id list) Hashtbl.t;
  (* Result of the most recently executed rmw per key: execution applies f
     to the max of the agreed base and this tail, which is deterministic
     because interfering instances execute in one global order. *)
  exec_tail : (int, value * Carstamp.t) Hashtbl.t;
  mutable next_inst : int;
  mutable executed_hook : instance -> unit;
}

let create engine (config : Config.t) ~replica_id =
  {
    replica_id;
    station = Sim.Station.create engine ~service_time_us:config.Config.service_time_us;
    values = Hashtbl.create 4096;
    instances = Hashtbl.create 256;
    per_key = Hashtbl.create 256;
    exec_tail = Hashtbl.create 256;
    next_inst = 0;
    executed_hook = (fun _ -> ());
  }

let get t key =
  match Hashtbl.find_opt t.values key with
  | None -> (None, Carstamp.zero)
  | Some vc -> vc

let apply t ~key ~value ~cs =
  let _, cur = get t key in
  if Carstamp.(cs > cur) then Hashtbl.replace t.values key (Some value, cs)

let interf t key = try Hashtbl.find t.per_key key with Not_found -> []

let max_interf_seq t key =
  List.fold_left
    (fun acc id ->
      match Hashtbl.find_opt t.instances id with
      | None -> acc
      | Some i -> max acc i.i_seq)
    0 (interf t key)

let register t inst =
  Hashtbl.replace t.instances inst.inst_id inst;
  Hashtbl.replace t.per_key inst.i_key (inst.inst_id :: interf t inst.i_key)

let fresh_instance t ~key ~f =
  let id = (t.replica_id, t.next_inst) in
  t.next_inst <- t.next_inst + 1;
  let inst =
    {
      inst_id = id;
      i_key = key;
      i_f = f;
      i_seq = 1 + max_interf_seq t key;
      i_deps = interf t key;
      i_base = get t key;
      i_status = Preaccepted;
      i_result = None;
      i_observed = None;
    }
  in
  register t inst;
  inst

let merge_preaccept t ~inst_id ~key ~f ~seq ~deps ~base =
  let seq' = max seq (1 + max_interf_seq t key) in
  let deps' = List.sort_uniq compare (deps @ interf t key) in
  let deps' = List.filter (( <> ) inst_id) deps' in
  let local = get t key in
  let base' = if Carstamp.(snd local > snd base) then local else base in
  let inst =
    match Hashtbl.find_opt t.instances inst_id with
    | Some i -> i
    | None ->
      let i =
        {
          inst_id;
          i_key = key;
          i_f = f;
          i_seq = seq';
          i_deps = deps';
          i_base = base';
          i_status = Preaccepted;
          i_result = None;
          i_observed = None;
        }
      in
      register t i;
      i
  in
  inst.i_seq <- seq';
  inst.i_deps <- deps';
  inst.i_base <- base';
  (seq', deps', base')

let status_rank = function
  | Preaccepted -> 0
  | Accepted -> 1
  | Committed -> 2
  | Executed -> 3

(* Deterministic execution, following EPaxos: consider the graph of
   committed-but-unexecuted instances with edges to their unexecuted
   dependencies. An instance may execute only when everything reachable from
   it is committed (no unknown or pre-accepted instance in its closure).
   Executable instances are grouped into strongly connected components,
   components run dependencies-first (Tarjan emits them in that order), and
   members of one component run in (seq, id) order. Any two interfering
   instances share a dependency edge in at least one direction (pre-accept
   quorums intersect), so every replica executes interfering instances in
   the same order and computes identical results. *)
let try_execute t =
  let committed =
    Hashtbl.fold
      (fun id i acc -> if i.i_status = Committed then (id, i) :: acc else acc)
      t.instances []
  in
  if committed <> [] then begin
    (* Blocked: reaches (through unexecuted deps) something unknown or not
       yet committed. Cycles among committed instances do not block. *)
    let blocked : (instance_id, bool) Hashtbl.t = Hashtbl.create 16 in
    let rec is_blocked id =
      match Hashtbl.find_opt blocked id with
      | Some b -> b
      | None -> (
        match Hashtbl.find_opt t.instances id with
        | None -> true
        | Some i -> (
          match i.i_status with
          | Executed -> false
          | Preaccepted | Accepted -> true
          | Committed ->
            Hashtbl.replace blocked id false (* tentative: cycles are fine *);
            let b = List.exists is_blocked i.i_deps in
            Hashtbl.replace blocked id b;
            b))
    in
    let executable =
      List.filter (fun (id, _) -> not (is_blocked id)) committed
    in
    if executable <> [] then begin
      (* Tarjan's SCC over the executable subgraph; edges point to deps, so
         components are emitted dependencies-first. *)
      let index : (instance_id, int) Hashtbl.t = Hashtbl.create 16 in
      let lowlink : (instance_id, int) Hashtbl.t = Hashtbl.create 16 in
      let on_stack : (instance_id, unit) Hashtbl.t = Hashtbl.create 16 in
      let stack = ref [] in
      let next_index = ref 0 in
      let components = ref [] in
      let in_subgraph id =
        match Hashtbl.find_opt t.instances id with
        | Some i -> i.i_status = Committed && not (is_blocked id)
        | None -> false
      in
      let rec strongconnect id =
        Hashtbl.replace index id !next_index;
        Hashtbl.replace lowlink id !next_index;
        incr next_index;
        stack := id :: !stack;
        Hashtbl.replace on_stack id ();
        let i = Hashtbl.find t.instances id in
        List.iter
          (fun d ->
            if in_subgraph d then
              if not (Hashtbl.mem index d) then begin
                strongconnect d;
                let ll = min (Hashtbl.find lowlink id) (Hashtbl.find lowlink d) in
                Hashtbl.replace lowlink id ll
              end
              else if Hashtbl.mem on_stack d then begin
                let ll = min (Hashtbl.find lowlink id) (Hashtbl.find index d) in
                Hashtbl.replace lowlink id ll
              end)
          i.i_deps;
        if Hashtbl.find lowlink id = Hashtbl.find index id then begin
          let rec pop acc =
            match !stack with
            | [] -> acc
            | top :: rest ->
              stack := rest;
              Hashtbl.remove on_stack top;
              if top = id then top :: acc else pop (top :: acc)
          in
          components := pop [] :: !components
        end
      in
      List.iter
        (fun (id, _) -> if not (Hashtbl.mem index id) then strongconnect id)
        (List.sort compare executable);
      let exec_one id =
        let inst = Hashtbl.find t.instances id in
        let base_eff =
          match Hashtbl.find_opt t.exec_tail inst.i_key with
          | Some (v, cs) when Carstamp.(cs > snd inst.i_base) -> (Some v, cs)
          | Some _ | None -> inst.i_base
        in
        let old_v, base_cs = base_eff in
        let new_v = inst.i_f old_v in
        let cs = Carstamp.for_rmw ~base:base_cs in
        apply t ~key:inst.i_key ~value:new_v ~cs;
        Hashtbl.replace t.exec_tail inst.i_key (new_v, cs);
        inst.i_result <- Some (new_v, cs);
        inst.i_observed <- old_v;
        inst.i_status <- Executed;
        t.executed_hook inst
      in
      List.iter
        (fun component ->
          let members =
            List.map (fun id -> Hashtbl.find t.instances id) component
            |> List.sort (fun a b -> compare (a.i_seq, a.inst_id) (b.i_seq, b.inst_id))
          in
          List.iter (fun i -> exec_one i.inst_id) members)
        (List.rev !components)
    end
  end

let record_decision t ~inst_id ~key ~f ~seq ~deps ~base status =
  let inst =
    match Hashtbl.find_opt t.instances inst_id with
    | Some i -> i
    | None ->
      let i =
        {
          inst_id;
          i_key = key;
          i_f = f;
          i_seq = seq;
          i_deps = deps;
          i_base = base;
          i_status = status;
          i_result = None;
          i_observed = None;
        }
      in
      register t i;
      i
  in
  inst.i_seq <- seq;
  inst.i_deps <- List.filter (( <> ) inst_id) deps;
  inst.i_base <- base;
  if status_rank status > status_rank inst.i_status then inst.i_status <- status;
  if inst.i_status = Committed then try_execute t
