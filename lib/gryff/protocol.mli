(** Gryff / Gryff-RSC wire protocols (§7, Appendix B, Algorithms 3-5).

    Reads: a read phase to a quorum; if the quorum disagrees, baseline Gryff
    pays a write-back phase (two WAN round trips) while Gryff-RSC returns
    immediately and hands the caller a {e dependency} — the key/value/
    carstamp that must be piggybacked onto the client's next operation so
    causally later operations observe it.

    Writes: always two phases (carstamp query, then propagate).

    Rmws: EPaxos-style consensus among the replicas — pre-accept to a fast
    quorum, slow-path accept round on disagreement, deterministic execution
    in dependency order with carstamps slotted after the base write.

    Real-time fence: write the pending dependency back to a quorum (§7.1). *)

type dep = { d_key : int; d_value : int; d_cs : Carstamp.t }

type rmw_pending
(** Coordinator-side completion state: an rmw replies only once its result
    is applied at a quorum (coordinator execution + execution acks). *)

type ctx = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  config : Config.t;
  replicas : Replica.t array;
  rmw_waiters : (Replica.instance_id, rmw_pending) Hashtbl.t;
  mutable n_reads : int;
  mutable n_read_second_round : int;  (** Lin-mode write-backs *)
  mutable n_deps_created : int;  (** Rsc-mode deferred write-backs *)
  mutable n_writes : int;
  mutable n_rmws : int;
  mutable n_rmw_slow : int;  (** rmws that needed the accept round *)
  mutable retrans : Sim.Rpc.t option;
      (** per-request retransmission for the idempotent phases *)
  mutable tracer : Obs.Trace.t;  (** span sink; [Obs.Trace.disabled] = off *)
}

val make_ctx : Sim.Engine.t -> Sim.Net.t -> Config.t -> ctx

val set_tracer : ctx -> Obs.Trace.t -> unit
(** Install a span sink on the protocol, the network underneath it, and the
    retransmission helper (if armed). Phases recorded: a baseline read's
    write-back round, RSC's deferred-dependency creation, rmw slow paths,
    plus per-message network hops and RPC retries. Passive: it never draws
    randomness or schedules events. *)

val enable_retrans : ctx -> rng:Sim.Rng.t -> ?timeout_us:int -> unit -> unit
(** Arm retransmission (default 300 ms deadline, 8 attempts, capped backoff)
    on every idempotent request/reply exchange: read round one, the write's
    carstamp query, and propagates. Re-sends are safe because replica state
    merges by carstamp maximum; rmw pre-accepts are not idempotent and keep
    the bare single-send path. [rng] feeds retry jitter only, so fault-free
    runs stay byte-identical to the unarmed protocol. *)

type read_result = {
  r_value : int option;
  r_cs : Carstamp.t;
  r_rounds : int;  (** 1 or 2 *)
  r_dep : dep option;  (** new dependency to track (Rsc mode) *)
}

val read :
  ctx -> client_site:int -> cid:int -> deps:dep list -> key:int ->
  (read_result -> unit) -> unit

type write_result = { w_cs : Carstamp.t }

val write :
  ?on_apply:(Carstamp.t -> unit) -> ctx -> client_site:int -> cid:int ->
  deps:dep list -> key:int -> value:int -> (write_result -> unit) -> unit
(** The dependencies are propagated by the first phase; callers clear them.
    [on_apply] fires with the chosen carstamp when the propagate phase
    starts — the point past which the value may be visible at replicas even
    if the acks never reach the client (chaos-audit accounting). *)

type rmw_result = {
  m_observed : int option;  (** value the function was applied to *)
  m_value : int;  (** value written *)
  m_cs : Carstamp.t;
  m_slow : bool;
}

val rmw :
  ctx -> client_site:int -> cid:int -> deps:dep list -> key:int ->
  f:(int option -> int) -> (rmw_result -> unit) -> unit

val fence : ctx -> client_site:int -> deps:dep list -> (unit -> unit) -> unit
(** Write the pending dependencies back to a quorum; no-op without any. *)
