(** Gryff / Gryff-RSC wire protocols (§7, Appendix B, Algorithms 3-5).

    Reads: a read phase to a quorum; if the quorum disagrees, baseline Gryff
    pays a write-back phase (two WAN round trips) while Gryff-RSC returns
    immediately and hands the caller a {e dependency} — the key/value/
    carstamp that must be piggybacked onto the client's next operation so
    causally later operations observe it.

    Writes: always two phases (carstamp query, then propagate).

    Rmws: EPaxos-style consensus among the replicas — pre-accept to a fast
    quorum, slow-path accept round on disagreement, deterministic execution
    in dependency order with carstamps slotted after the base write.

    Real-time fence: write the pending dependency back to a quorum (§7.1). *)

type dep = { d_key : int; d_value : int; d_cs : Carstamp.t }

type rmw_pending
(** Coordinator-side completion state: an rmw replies only once its result
    is applied at a quorum (coordinator execution + execution acks). *)

type ctx = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  config : Config.t;
  replicas : Replica.t array;
  rmw_waiters : (Replica.instance_id, rmw_pending) Hashtbl.t;
  mutable n_reads : int;
  mutable n_read_second_round : int;  (** Lin-mode write-backs *)
  mutable n_deps_created : int;  (** Rsc-mode deferred write-backs *)
  mutable n_writes : int;
  mutable n_rmws : int;
  mutable n_rmw_slow : int;  (** rmws that needed the accept round *)
  mutable retrans : Sim.Rpc.t option;
      (** per-request retransmission for the idempotent phases *)
  mutable tracer : Obs.Trace.t;  (** span sink; [Obs.Trace.disabled] = off *)
  mutable drop_expired : bool;
      (** deadline propagation: replicas drop requests whose riding
          deadline has passed before any service cost is charged *)
  mutable fanout : read_fanout;  (** read fan-out policy *)
  mutable hedge_us : int;  (** [Hedged] fan-out delay *)
  mutable retry_budget : Sim.Rpc.Budget.t option;
      (** fleet-wide token bucket capping shed-retry amplification *)
  mutable n_expired : int;  (** requests dropped expired at dequeue *)
  mutable n_shed : int;  (** requests NACKed by admission control *)
  mutable n_abandoned : int;  (** per-replica legs given up (shed, no budget) *)
  mutable n_hedges : int;  (** hedge fan-outs actually issued *)
  mutable n_hedge_wins : int;  (** hedge replies that completed a quorum *)
}

and read_fanout =
  | Fan_all
      (** ask every replica, keep the first quorum of replies (default —
          the historical behavior; maximal implicit hedging, maximal
          message cost) *)
  | Fan_quorum
      (** ask a bare quorum chosen by ring locality from the client's
          site — cheapest, but one gray-failed member drags every read *)
  | Hedged
      (** bare quorum first; if it has not completed after [hedge_us],
          fan out to the remaining replicas and let the first quorum win *)

(** A replica's refusal (deadline passed at dequeue, or admission-control
    shed with a suggested backoff), NACKed to senders on client-facing
    request legs. *)
type server_reject = Expired | Pushback of Sim.Station.pushback

val make_ctx : Sim.Engine.t -> Sim.Net.t -> Config.t -> ctx

val set_tracer : ctx -> Obs.Trace.t -> unit
(** Install a span sink on the protocol, the network underneath it, and the
    retransmission helper (if armed). Phases recorded: a baseline read's
    write-back round, RSC's deferred-dependency creation, rmw slow paths,
    plus per-message network hops and RPC retries. Passive: it never draws
    randomness or schedules events. *)

val enable_retrans : ctx -> rng:Sim.Rng.t -> ?timeout_us:int -> unit -> unit
(** Arm retransmission (default 300 ms deadline, 8 attempts, capped backoff)
    on every idempotent request/reply exchange: read round one, the write's
    carstamp query, and propagates. Re-sends are safe because replica state
    merges by carstamp maximum; rmw pre-accepts are not idempotent and keep
    the bare single-send path. [rng] feeds retry jitter only, so fault-free
    runs stay byte-identical to the unarmed protocol. *)

type read_result = {
  r_value : int option;
  r_cs : Carstamp.t;
  r_rounds : int;  (** 1 or 2 *)
  r_dep : dep option;  (** new dependency to track (Rsc mode) *)
}

val read :
  ?deadline_us:int -> ctx -> client_site:int -> cid:int -> deps:dep list ->
  key:int -> (read_result -> unit) -> unit
(** With [drop_expired] armed, [deadline_us] stamps an absolute expiry on
    every request leg; replicas drop expired legs before serving them and
    the quorum forms from the rest (or never — the op is then late by
    definition and the caller's deadline accounting records it). *)

type write_result = { w_cs : Carstamp.t }

val write :
  ?on_apply:(Carstamp.t -> unit) -> ?deadline_us:int -> ctx ->
  client_site:int -> cid:int ->
  deps:dep list -> key:int -> value:int -> (write_result -> unit) -> unit
(** The dependencies are propagated by the first phase; callers clear them.
    [on_apply] fires with the chosen carstamp when the propagate phase
    starts — the point past which the value may be visible at replicas even
    if the acks never reach the client (chaos-audit accounting). *)

type rmw_result = {
  m_observed : int option;  (** value the function was applied to *)
  m_value : int;  (** value written *)
  m_cs : Carstamp.t;
  m_slow : bool;
}

val rmw :
  ctx -> client_site:int -> cid:int -> deps:dep list -> key:int ->
  f:(int option -> int) -> (rmw_result -> unit) -> unit

val fence : ctx -> client_site:int -> deps:dep list -> (unit -> unit) -> unit
(** Write the pending dependencies back to a quorum; no-op without any. *)

(** {1 Overload & gray-failure controls}

    All default-off: with none armed, no extra event is scheduled and no
    random draw occurs, so seeded schedules are byte-identical. *)

val stations : ctx -> Sim.Station.t list
(** Every replica's station, for queue-depth / sojourn observation. *)

val set_site_slowdown : ctx -> site:int -> factor:int -> unit
(** Gray failure: the replica at [site] serves [factor]x slower. Drivers
    apply this from their fault hook on {!Chaos.Schedule.Slow}. *)

val clear_slowdowns : ctx -> unit

val set_admission : ctx -> Sim.Station.limits option -> unit
(** Arm (or disarm) bounded queues with load shedding at every replica.
    Shed request legs NACK back with a server-suggested backoff; the
    sender re-offers to the same replica (budget- and cap-bounded) while
    the quorum keeps forming from the others. *)

val set_drop_expired : ctx -> bool -> unit

val set_read_fanout : ctx -> read_fanout -> unit

val set_hedge_us : ctx -> int -> unit
(** Delay before the {!Hedged} fan-out widens past the bare quorum. Raises
    [Invalid_argument] if negative. *)

val set_retry_budget : ctx -> Sim.Rpc.Budget.t option -> unit
