type t = { ts : int; cid : int; rmwc : int }

let zero = { ts = 0; cid = 0; rmwc = 0 }

let compare a b =
  let c = Stdlib.compare a.ts b.ts in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.cid b.cid in
    if c <> 0 then c else Stdlib.compare a.rmwc b.rmwc

let ( < ) a b = compare a b < 0

let ( > ) a b = compare a b > 0

let equal a b = compare a b = 0

let max a b = if compare a b >= 0 then a else b

let for_write ~base ~cid = { ts = base.ts + 1; cid; rmwc = 0 }

let for_rmw ~base = { base with rmwc = base.rmwc + 1 }

let pp ppf t = Fmt.pf ppf "(%d.%d.%d)" t.ts t.cid t.rmwc
