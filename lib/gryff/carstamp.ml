type t = { ts : int; cid : int; rmwc : int }

let zero = { ts = 0; cid = 0; rmwc = 0 }

let compare a b =
  let c = Stdlib.compare a.ts b.ts in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.cid b.cid in
    if c <> 0 then c else Stdlib.compare a.rmwc b.rmwc

let ( < ) a b = compare a b < 0

let ( > ) a b = compare a b > 0

let equal a b = compare a b = 0

let max a b = if compare a b >= 0 then a else b

let for_write ~base ~cid = { ts = base.ts + 1; cid; rmwc = 0 }

let for_rmw ~base = { base with rmwc = base.rmwc + 1 }

let pp ppf t = Fmt.pf ppf "(%d.%d.%d)" t.ts t.cid t.rmwc

let pack t =
  let in_range v bits = v >= 0 && v lsr bits = 0 in
  if not (in_range t.ts 22 && in_range t.cid 20 && in_range t.rmwc 20) then
    invalid_arg "Carstamp.pack: component out of range";
  (t.ts lsl 40) lor (t.cid lsl 20) lor t.rmwc
