(** A Gryff / Gryff-RSC client: owns the per-client dependency tuple d
    (Algorithm 3) and records operations into the cluster history.

    In Rsc mode, a one-round read that observed a not-yet-quorum-replicated
    value stores it as the dependency; the next operation's first phase
    piggybacks and clears it. In Lin mode the dependency is always empty
    (reads write back synchronously). *)

type t

val create : Cluster.t -> site:int -> t

val proc : t -> int
val site : t -> int

val deps : t -> Protocol.dep list
(** Pending dependencies (at most one per key). The paper's clients carry a
    single tuple; the list generalizes it for out-of-band context
    propagation between processes. *)

val read : t -> key:int -> (Protocol.read_result -> unit) -> unit
val write : t -> key:int -> value:int -> (Protocol.write_result -> unit) -> unit
val rmw : t -> key:int -> f:(int option -> int) -> (Protocol.rmw_result -> unit) -> unit

val fence : t -> (unit -> unit) -> unit
(** §7.1: write back the pending dependencies so future reads anywhere
    observe at least this client's causal past. *)

val absorb_deps : t -> Protocol.dep list -> unit
(** Context propagation: adopt dependencies received out of band (the
    receiving process propagates them before its next operation). *)
