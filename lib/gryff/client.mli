(** A Gryff / Gryff-RSC client: owns the per-client dependency tuple d
    (Algorithm 3) and records operations into the cluster history.

    In Rsc mode, a one-round read that observed a not-yet-quorum-replicated
    value stores it as the dependency; the next operation's first phase
    piggybacks and clears it. In Lin mode the dependency is always empty
    (reads write back synchronously). *)

type t

val create : ?unsafe_no_deps:bool -> Cluster.t -> site:int -> t
(** [unsafe_no_deps] (default false) deliberately discards the dependencies
    Rsc-mode reads hand back, disabling the deferred write-back that makes
    Gryff-RSC sequentially consistent. Only for chaos-audit control runs —
    the resulting histories should fail the checker. *)

val proc : t -> int
val site : t -> int

val deps : t -> Protocol.dep list
(** Pending dependencies (at most one per key). The paper's clients carry a
    single tuple; the list generalizes it for out-of-band context
    propagation between processes. *)

val read :
  ?deadline_us:int -> t -> key:int -> (Protocol.read_result -> unit) -> unit
(** [deadline_us] is the op's remaining deadline: with the cluster's
    [drop_expired] armed it rides every request leg and replicas drop the
    work once it cannot start in time. *)

val write :
  ?on_apply:(Carstamp.t -> unit) -> ?deadline_us:int -> t -> key:int ->
  value:int -> (Protocol.write_result -> unit) -> unit
(** [on_apply] is {!Protocol.write}'s visibility hook (chaos audits use it
    to account for writes whose acknowledgements a fault swallowed). *)

val rmw : t -> key:int -> f:(int option -> int) -> (Protocol.rmw_result -> unit) -> unit

val fence : t -> (unit -> unit) -> unit
(** §7.1: write back the pending dependencies so future reads anywhere
    observe at least this client's causal past. *)

val absorb_deps : t -> Protocol.dep list -> unit
(** Context propagation: adopt dependencies received out of band (the
    receiving process propagates them before its next operation). *)
