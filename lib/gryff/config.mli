(** Gryff / Gryff-RSC deployment configuration (§7.2, Table 2). *)

type mode = Lin  (** baseline Gryff: linearizable *) | Rsc

type t = {
  mode : mode;
  n_replicas : int;  (** one replica per site *)
  rtt_ms : float array array;
  service_time_us : int;
  jitter : float;
}

val wan5 : mode:mode -> unit -> t
(** The paper's five-region deployment (CA, VA, IR, OR, JP) with Table 2's
    round-trip times. *)

val single_dc : mode:mode -> service_time_us:int -> unit -> t
(** §7.4's overhead setup: five replicas, in-DC latency. *)

val quorum : t -> int
(** Majority: ⌈(n+1)/2⌉ = 3 for five replicas. *)

val fast_quorum : t -> int
(** EPaxos fast-path quorum: F + ⌊(F+1)/2⌋ = 3 for five replicas. *)

val site_name : t -> int -> string
