(* Figure 7: Gryff vs Gryff-RSC p99 read latency across write ratios at
   three conflict percentages (2%, 10%, 25%), five regions, 16 closed-loop
   clients — plus the §7.3 deep-tail measurement. *)

let print_table2 () =
  let c = Gryff.Config.wan5 ~mode:Gryff.Config.Rsc () in
  Fmt.pr "Table 2 — emulated round-trip latencies (ms):@.";
  Fmt.pr "      ";
  for i = 0 to 4 do
    Fmt.pr "%7s" (Gryff.Config.site_name c i)
  done;
  Fmt.pr "@.";
  for i = 0 to 4 do
    Fmt.pr "  %4s" (Gryff.Config.site_name c i);
    for j = 0 to 4 do
      if j <= i then Fmt.pr "%7.1f" c.Gryff.Config.rtt_ms.(i).(j) else Fmt.pr "%7s" ""
    done;
    Fmt.pr "@."
  done;
  Fmt.pr "@."

let run ?(duration_s = 150.0) ?(n_keys = 100_000) ?(seed = 3)
    ?(write_ratios = [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ]) () =
  Fmt.pr "=== Figure 7: p99 read latency, YCSB, 5 replicas, 16 closed-loop clients ===@.@.";
  print_table2 ();
  List.iteri
    (fun i conflict ->
      let sub = [| "7a"; "7b"; "7c" |].(i) in
      Fmt.pr "Fig. %s — %.0f%% conflicts: p99 read latency (ms) by write ratio@." sub
        (conflict *. 100.0);
      Fmt.pr "  %11s | %10s %12s | %10s %12s | %11s@." "write ratio" "gryff"
        "slow reads" "gryff-rsc" "deferred wb" "p99 reduction";
      List.iter
        (fun write_ratio ->
          let lin =
            Harness.gryff_wan ~mode:Gryff.Config.Lin ~conflict ~write_ratio ~n_keys
              ~duration_s ~seed ()
          in
          let rsc =
            Harness.gryff_wan ~mode:Gryff.Config.Rsc ~conflict ~write_ratio ~n_keys
              ~duration_s ~seed ()
          in
          Harness.report_check "gryff" lin.Harness.Run.check;
          Harness.report_check "gryff-rsc" rsc.Harness.Run.check;
          let p99 r =
            match Stats.Recorder.percentile_ms_opt r 99.0 with
            | Some v -> v
            | None -> 0.0
          in
          let p_lin = p99 (Harness.Run.latency lin "read")
          and p_rsc = p99 (Harness.Run.latency rsc "read") in
          Fmt.pr "  %11.2f | %10.1f %12d | %10.1f %12d | %10.0f%%@." write_ratio
            p_lin
            (Harness.Run.counter lin "read.second_round")
            p_rsc
            (Harness.Run.counter rsc "read.deps_created")
            (Stats.Summary.improvement ~baseline:p_lin ~variant:p_rsc))
        write_ratios;
      Fmt.pr "@.")
    [ 0.02; 0.10; 0.25 ]

let run_tail ?(duration_s = 600.0) ?(n_keys = 100_000) ?(seed = 4) () =
  Fmt.pr "=== §7.3 deep tail: 10%% conflicts, 0.3 write ratio ===@.";
  let lin =
    Harness.gryff_wan ~mode:Gryff.Config.Lin ~conflict:0.10 ~write_ratio:0.3 ~n_keys
      ~duration_s ~seed ()
  in
  let rsc =
    Harness.gryff_wan ~mode:Gryff.Config.Rsc ~conflict:0.10 ~write_ratio:0.3 ~n_keys
      ~duration_s ~seed ()
  in
  Harness.report_check "gryff" lin.Harness.Run.check;
  Harness.report_check "gryff-rsc" rsc.Harness.Run.check;
  let read_lin = Harness.Run.latency lin "read"
  and read_rsc = Harness.Run.latency rsc "read" in
  Stats.Summary.print_latency_table ~header:"read latency (ms)"
    ~rows:[ ("gryff", read_lin); ("gryff-rsc", read_rsc) ]
    ~points:[ 50.0; 90.0; 99.0; 99.9 ] ();
  let p999 r =
    match Stats.Recorder.percentile_ms_opt r 99.9 with Some v -> v | None -> 0.0
  in
  Fmt.pr "  -> p99.9 reduction: %.0f%% (%.0f -> %.0f ms)@."
    (Stats.Summary.improvement ~baseline:(p999 read_lin) ~variant:(p999 read_rsc))
    (p999 read_lin) (p999 read_rsc);
  Stats.Summary.print_latency_table ~header:"write latency (ms) — identical by design"
    ~rows:
      [
        ("gryff", Harness.Run.latency lin "write");
        ("gryff-rsc", Harness.Run.latency rsc "write");
      ]
    ~points:[ 50.0; 99.0 ] ();
  Fmt.pr "@."
