(* Ablations of Spanner-RSS's design knobs (DESIGN.md):
   1. t_ee estimation slack — how estimate quality trades RO blocking
      against RW completion latency;
   2. TrueTime error sweep — how ε moves both systems' tails;
   3. per-session vs. global t_min — why the paper gives each partly-open
      session a fresh minimum read timestamp. *)

let p_or_zero r p =
  match Stats.Recorder.percentile_ms_opt r p with Some v -> v | None -> 0.0

let ro_p99 (run : Harness.Run.t) = p_or_zero (Harness.Run.latency run "ro") 99.0

let rw_p50 (run : Harness.Run.t) = p_or_zero (Harness.Run.latency run "rw") 50.0

let tee_slack ?(duration_s = 60.0) ?(seed = 11) () =
  Fmt.pr "--- Ablation 1: t_ee estimate slack (skew 0.9) ---@.";
  Fmt.pr "  %10s | %12s %12s %14s@." "pad (ms)" "RO p99 (ms)" "RW p50 (ms)"
    "RO blocked";
  List.iter
    (fun pad_ms ->
      let config = Spanner.Config.wan3 ~mode:Spanner.Config.Rss () in
      let config = { config with Spanner.Config.tee_pad_us = Sim.Engine.ms pad_ms } in
      let run =
        Harness.spanner_wan ~config:(Some config) ~mode:Spanner.Config.Rss
          ~theta:0.9 ~n_keys:1_000_000 ~arrival_rate_per_sec:6.0 ~duration_s ~seed
          ()
      in
      Harness.report_check "tee-slack" run.Harness.Run.check;
      Fmt.pr "  %10.0f | %12.1f %12.1f %10d/%d@." pad_ms (ro_p99 run) (rw_p50 run)
        (Harness.Run.counter run "ro.blocked_at_shards")
        (Harness.Run.counter run "ro.count"))
    [ 0.0; 25.0; 100.0; 400.0 ];
  Fmt.pr "  (larger pads: ROs skip prepared txns more often, but every RW@.";
  Fmt.pr "   waits out its padded estimate before completing)@.@."

let epsilon_sweep ?(duration_s = 60.0) ?(seed = 12) () =
  Fmt.pr "--- Ablation 2: TrueTime error bound (skew 0.75) ---@.";
  Fmt.pr "  %10s | %23s | %23s@." "eps (ms)" "spanner RO p99 / RW p50"
    "rss RO p99 / RW p50";
  List.iter
    (fun eps_ms ->
      let with_eps mode =
        let config = Spanner.Config.wan3 ~mode () in
        let config = { config with Spanner.Config.epsilon_us = Sim.Engine.ms eps_ms } in
        Harness.spanner_wan ~config:(Some config) ~mode ~theta:0.75
          ~n_keys:1_000_000 ~arrival_rate_per_sec:20.0 ~duration_s ~seed ()
      in
      let strict = with_eps Spanner.Config.Strict in
      let rss = with_eps Spanner.Config.Rss in
      Harness.report_check "eps-strict" strict.Harness.Run.check;
      Harness.report_check "eps-rss" rss.Harness.Run.check;
      Fmt.pr "  %10.0f | %11.1f / %9.1f | %11.1f / %9.1f@." eps_ms (ro_p99 strict)
        (rw_p50 strict) (ro_p99 rss) (rw_p50 rss))
    [ 1.0; 10.0; 50.0 ];
  Fmt.pr "@."

(* Global t_min: funnel every session through a handful of long-lived
   clients, so t_min ratchets up with the whole system's write activity. *)
let tmin_scope ?(duration_s = 60.0) ?(seed = 13) () =
  Fmt.pr "--- Ablation 3: per-session vs global t_min (skew 0.9) ---@.";
  let per_session =
    Harness.spanner_wan ~mode:Spanner.Config.Rss ~theta:0.9 ~n_keys:1_000_000
      ~arrival_rate_per_sec:6.0 ~duration_s ~seed ()
  in
  (* Global variant: run the same offered load through 3 shared clients. *)
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.make seed in
  let config = Spanner.Config.wan3 ~mode:Spanner.Config.Rss () in
  let cluster = Spanner.Cluster.create engine ~rng config in
  let retwis =
    Workload.Retwis.create ~rng:(Sim.Rng.split rng) ~n_keys:1_000_000 ~theta:0.9
  in
  let shared = Array.init 3 (fun site -> Spanner.Client.create cluster ~site) in
  let ro = Stats.Recorder.create () in
  let until = Sim.Engine.sec duration_s in
  ignore
    (Workload.Client_model.partly_open engine ~rng:(Sim.Rng.split rng)
       ~arrival_rate_per_sec:6.0 ~stay:0.9
       ~body:(fun ~client k ->
         let c = shared.(client mod 3) in
         let txn = Workload.Retwis.sample retwis in
         let t0 = Sim.Engine.now engine in
         if Workload.Retwis.is_read_only txn then
           Spanner.Client.ro c ~keys:txn.Workload.Retwis.read_keys (fun _ ->
               Stats.Recorder.add ro (Sim.Engine.now engine - t0);
               k ())
         else
           Spanner.Client.rw c ~read_keys:txn.Workload.Retwis.read_keys
             ~write_keys:txn.Workload.Retwis.write_keys (fun _ -> k ()))
       ~until ());
  Sim.Engine.run ~max_events:600_000_000 engine;
  let stats = Spanner.Cluster.stats cluster in
  Fmt.pr "  per-session t_min: RO p99 %.1f ms, blocked %d/%d@." (ro_p99 per_session)
    (Harness.Run.counter per_session "ro.blocked_at_shards")
    (Harness.Run.counter per_session "ro.count");
  Fmt.pr "  global t_min:      RO p99 %.1f ms, blocked %d/%d@." (p_or_zero ro 99.0)
    stats.Spanner.Cluster.ro_blocked_at_shards stats.Spanner.Cluster.ro_count;
  Fmt.pr "  (a shared t_min advances with every observed commit, forcing more@.";
  Fmt.pr "   tp <= t_min blocking — why the paper scopes t_min per session)@.@."

let run () =
  Fmt.pr "=== Ablations ===@.@.";
  tee_slack ();
  epsilon_sweep ();
  tmin_scope ()
