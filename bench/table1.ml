(* Table 1: which invariants hold and which anomalies occur per consistency
   model, measured by running the photo-sharing application over
   strict-serializable Spanner, Spanner-RSS, and the PO-serializable store. *)

let merge a (b : Photoapp.App.tally) =
  a.Photoapp.App.adds <- a.Photoapp.App.adds + b.Photoapp.App.adds;
  a.i1_checks <- a.Photoapp.App.i1_checks + b.Photoapp.App.i1_checks;
  a.i1_violations <- a.i1_violations + b.Photoapp.App.i1_violations;
  a.i2_checks <- a.i2_checks + b.Photoapp.App.i2_checks;
  a.i2_violations <- a.i2_violations + b.Photoapp.App.i2_violations;
  a.a2_trials <- a.a2_trials + b.Photoapp.App.a2_trials;
  a.a2_anomalies <- a.a2_anomalies + b.Photoapp.App.a2_anomalies;
  a.a3_trials <- a.a3_trials + b.Photoapp.App.a3_trials;
  a.a3_anomalies <- a.a3_anomalies + b.Photoapp.App.a3_anomalies;
  a.a3_window_us <- a.a3_window_us + b.Photoapp.App.a3_window_us

let empty () =
  {
    Photoapp.App.adds = 0;
    i1_checks = 0;
    i1_violations = 0;
    i2_checks = 0;
    i2_violations = 0;
    a2_trials = 0;
    a2_anomalies = 0;
    a3_trials = 0;
    a3_anomalies = 0;
    a3_window_us = 0;
  }

let run_store ~rounds ~seeds store_kind =
  let acc = empty () in
  let name = ref "" in
  List.iter
    (fun seed ->
      let engine = Sim.Engine.create () in
      let rng = Sim.Rng.make seed in
      let store =
        match store_kind with
        | `Strict ->
          Photoapp.App.spanner_store
            (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
               (Spanner.Config.wan3 ~mode:Spanner.Config.Strict ()))
        | `Rss ->
          Photoapp.App.spanner_store
            (Spanner.Cluster.create engine ~rng:(Sim.Rng.split rng)
               (Spanner.Config.wan3 ~mode:Spanner.Config.Rss ()))
        | `Po ->
          Photoapp.App.po_store
            (Postore.Store.create engine ~rng:(Sim.Rng.split rng) ())
      in
      name := store.Photoapp.App.store_name;
      let t =
        Photoapp.App.run_scenarios engine ~rng ~store
          ~causality:Photoapp.App.No_causality ~users:4 ~rounds
          ~queue_rtt_us:2_000 ~call_latency_us:1_000
      in
      Sim.Engine.run ~max_events:100_000_000 engine;
      merge acc t)
    seeds;
  (!name, acc)

let verdict ~violations ~checks ~always_label =
  if checks = 0 then "(no checks)"
  else if violations = 0 then always_label
  else Fmt.str "%d/%d" violations checks

let run ?(rounds = 50) ?(seeds = [ 31; 32; 33; 34; 35; 36; 37; 38 ]) () =
  Fmt.pr "=== Table 1: invariants and anomalies of the photo-sharing app ===@.";
  Fmt.pr "(measured over %d seeds x %d rounds per store; cells are violations/checks)@.@."
    (List.length seeds) rounds;
  let rows = List.map (run_store ~rounds ~seeds) [ `Strict; `Rss; `Po ] in
  Fmt.pr "  %-18s | %10s %10s | %12s %14s@." "consistency" "I1" "I2" "A2" "A3";
  List.iter
    (fun (name, t) ->
      Fmt.pr "  %-18s | %10s %10s | %12s %14s@." name
        (verdict ~violations:t.Photoapp.App.i1_violations
           ~checks:t.Photoapp.App.i1_checks ~always_label:"holds")
        (verdict ~violations:t.Photoapp.App.i2_violations
           ~checks:t.Photoapp.App.i2_checks ~always_label:"holds")
        (verdict ~violations:t.Photoapp.App.a2_anomalies
           ~checks:t.Photoapp.App.a2_trials ~always_label:"never")
        (verdict ~violations:t.Photoapp.App.a3_anomalies
           ~checks:t.Photoapp.App.a3_trials ~always_label:"never"))
    rows;
  List.iter
    (fun (name, t) ->
      if t.Photoapp.App.a3_anomalies > 0 then
        Fmt.pr "@.  %s: mean A3 window %.1f ms ('temporarily' quantified)" name
          (float_of_int t.Photoapp.App.a3_window_us
          /. float_of_int t.Photoapp.App.a3_anomalies /. 1000.0))
    rows;
  Fmt.pr "@.@.(paper's Table 1: strict = all hold/never; RSS = invariants hold, A3@.";
  Fmt.pr " 'temporarily'; PO-serializable = I2 broken, A2/A3 always possible)@.@."
