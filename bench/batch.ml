(* Batching / group-commit sweep.

   Drives the two single-DC saturation scenarios (spanner-dc, gryff-dc) with
   batching off (the baseline) and across a sweep of link-batching policies
   (deadline windows and the adaptive flush-on-idle policy), each both raw
   ([`No_check]) and online-checked — the point being that group commit buys
   saturation throughput by cutting messages per transaction, without the
   online checker losing the history.

   Output is machine-readable JSON (default [BENCH_batch.json]):

     dune exec bench/batch.exe --              # full sizes, ~1 min
     dune exec bench/batch.exe -- --smoke      # CI sizes, a few seconds

   Exit status: 1 if any online-checked run failed verification, if a
   batched policy did not reduce spanner-dc messages per transaction, or if
   a full (non-smoke) run's best policy missed the >= 15% spanner-dc
   saturation-throughput gain this suite exists to defend. *)

let verdict_name = function
  | Harness.Run.Pass -> "pass"
  | Harness.Run.Fail _ -> "fail"
  | Harness.Run.Unknown _ -> "unknown"

let verdict_detail = function
  | Harness.Run.Pass -> ""
  | Harness.Run.Fail m | Harness.Run.Unknown m -> m

type measured = {
  check : string;  (* "none" | "online" *)
  n_ops : int;
  tput : float;  (* completed ops per simulated second, post-warm-up *)
  p50_ms : float option;
  msgs_per_txn : float option;  (* spanner-dc only *)
  msgs_per_op : float;  (* net.messages / n_ops, protocol-agnostic *)
  cpu_s : float;
  batch_envelopes : int;
  batch_members : int;
  verdict : string;
  detail : string;
}

let measure ~check_name (f : unit -> Harness.Run.t) =
  Gc.compact ();
  let t0 = Sys.time () in
  let r = f () in
  let cpu_s = Sys.time () -. t0 in
  let n_ops = Harness.Run.n_records r in
  {
    check = check_name;
    n_ops;
    tput = Option.value (Harness.Run.gauge_opt r "throughput_tps") ~default:0.0;
    p50_ms = Harness.Run.gauge_opt r "p50_ms";
    msgs_per_txn = Harness.Run.gauge_opt r "msgs_per_txn";
    msgs_per_op =
      float_of_int (Harness.Run.counter r "net.messages")
      /. float_of_int (max 1 n_ops);
    cpu_s;
    batch_envelopes = Harness.Run.counter r "batch.envelopes";
    batch_members = Harness.Run.counter r "batch.members";
    verdict = verdict_name r.Harness.Run.check;
    detail = verdict_detail r.Harness.Run.check;
  }

(* ------------------------------------------------------------------ *)
(* Policies and scenarios                                              *)
(* ------------------------------------------------------------------ *)

let policies =
  [
    ("deadline-25us", { Sim.Net.batch_us = 25; batch_max = 32; adaptive = false });
    ("deadline-50us", { Sim.Net.batch_us = 50; batch_max = 32; adaptive = false });
    ("deadline-100us", { Sim.Net.batch_us = 100; batch_max = 64; adaptive = false });
    ("adaptive-50us", { Sim.Net.batch_us = 50; batch_max = 32; adaptive = true });
  ]

type scenario = {
  name : string;
  duration_s : float;
  smoke_duration_s : float;
  run : env:Harness.Env.t -> duration_s:float -> Harness.Run.t;
}

let scenarios ~seed =
  [
    (* Client counts sit at the baseline's saturation knee (its throughput
       plateaus there; more clients only grow queues), so the comparison is
       the paper-style saturation throughput, not a latency race. *)
    {
      name = "spanner-dc-rss";
      duration_s = 10.0;
      smoke_duration_s = 2.0;
      run =
        (fun ~env ~duration_s ->
          Harness.spanner_dc ~env ~mode:Spanner.Config.Rss ~n_shards:4
            ~service_time_us:10 ~n_clients:64 ~n_keys:2000 ~duration_s ~seed ());
    };
    {
      name = "gryff-dc-rsc";
      duration_s = 4.0;
      smoke_duration_s = 0.5;
      run =
        (fun ~env ~duration_s ->
          Harness.gryff_dc ~env ~mode:Gryff.Config.Rsc ~service_time_us:10
            ~n_clients:48 ~conflict:0.1 ~write_ratio:0.5 ~n_keys:2000
            ~duration_s ~seed ());
    };
  ]

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; the repo deliberately has no JSON dep)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let json_float_opt = function None -> "null" | Some f -> json_float f

let measured_json b m =
  Printf.bprintf b
    "{\"check\": \"%s\", \"n_ops\": %d, \"throughput_tps\": %s, \"p50_ms\": \
     %s, \"msgs_per_txn\": %s, \"msgs_per_op\": %s, \"cpu_s\": %s, \
     \"batch_envelopes\": %d, \"batch_members\": %d, \"verdict\": \"%s\", \
     \"detail\": \"%s\"}"
    m.check m.n_ops (json_float m.tput) (json_float_opt m.p50_ms)
    (json_float_opt m.msgs_per_txn) (json_float m.msgs_per_op)
    (json_float m.cpu_s) m.batch_envelopes m.batch_members m.verdict
    (json_escape m.detail)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_batch.json" in
  let seed = ref 42 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " CI sizes (seconds, not minutes)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_batch.json)");
      ("--seed", Arg.Set_int seed, "N workload seed (default 42)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "batch [--smoke] [--out FILE] [--seed N]";
  let failed = ref false in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"schema\": \"rss-repro/batch/v1\",\n  \"smoke\": %b,\n  \"seed\": \
     %d,\n  \"scenarios\": [\n"
    !smoke !seed;
  let spanner_gain = ref nan in
  let scs = scenarios ~seed:!seed in
  List.iteri
    (fun i sc ->
      let duration_s = if !smoke then sc.smoke_duration_s else sc.duration_s in
      Printf.printf "== %s (%.1f simulated s) ==\n%!" sc.name duration_s;
      let run_pair env_of_check =
        let raw =
          measure ~check_name:"none" (fun () ->
              sc.run ~env:(env_of_check `No_check) ~duration_s)
        in
        let online =
          measure ~check_name:"online" (fun () ->
              sc.run ~env:(env_of_check `Online) ~duration_s)
        in
        if online.verdict = "fail" then begin
          Printf.printf "   CONSISTENCY FAILURE: %s\n%!" online.detail;
          failed := true
        end;
        (raw, online)
      in
      let base_raw, base_online =
        run_pair (fun check -> Harness.Env.(default |> with_check check))
      in
      Printf.printf "   baseline:       %8.0f tps  %6.2f msgs/op\n%!"
        base_online.tput base_online.msgs_per_op;
      Printf.bprintf b
        "    {\"name\": \"%s\", \"baseline\": {\"raw\": " sc.name;
      measured_json b base_raw;
      Buffer.add_string b ", \"online\": ";
      measured_json b base_online;
      Buffer.add_string b "},\n     \"sweep\": [\n";
      let best = ref neg_infinity in
      List.iteri
        (fun j (pname, policy) ->
          let raw, online =
            run_pair (fun check ->
                Harness.Env.(
                  default |> with_check check |> with_batching (Some policy)))
          in
          Printf.printf
            "   %-15s %8.0f tps  %6.2f msgs/op  avg batch %4.1f  verdict=%s\n%!"
            pname online.tput online.msgs_per_op
            (float_of_int online.batch_members
            /. float_of_int (max 1 online.batch_envelopes))
            online.verdict;
          if online.tput > !best then best := online.tput;
          if sc.name = "spanner-dc-rss" then begin
            match (online.msgs_per_txn, base_online.msgs_per_txn) with
            | Some m, Some base when m >= base ->
              Printf.printf
                "   MESSAGE REGRESSION: %s msgs_per_txn %.2f >= baseline %.2f\n%!"
                pname m base;
              failed := true
            | _ -> ()
          end;
          Printf.bprintf b
            "      {\"policy\": \"%s\", \"batch_us\": %d, \"batch_max\": %d, \
             \"adaptive\": %b, \"raw\": "
            pname policy.Sim.Net.batch_us policy.Sim.Net.batch_max
            policy.Sim.Net.adaptive;
          measured_json b raw;
          Buffer.add_string b ", \"online\": ";
          measured_json b online;
          Printf.bprintf b "}%s\n"
            (if j < List.length policies - 1 then "," else ""))
        policies;
      let gain = (!best -. base_online.tput) /. Float.max 1e-9 base_online.tput in
      Printf.printf "   best gain over baseline: %+.1f%%\n%!" (gain *. 100.0);
      if sc.name = "spanner-dc-rss" then begin
        spanner_gain := gain;
        if (not !smoke) && gain < 0.15 then begin
          Printf.printf
            "   THROUGHPUT REGRESSION: best batched gain %.1f%% < required 15%%\n%!"
            (gain *. 100.0);
          failed := true
        end
      end;
      Printf.bprintf b "     ],\n     \"best_gain\": %s}%s\n" (json_float gain)
        (if i < List.length scs - 1 then "," else ""))
    scs;
  Printf.bprintf b "  ],\n  \"spanner_dc_gain\": %s\n}\n"
    (json_float !spanner_gain);
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if !failed then exit 1
