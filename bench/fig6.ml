(* Figure 6: throughput and median latency under high load, Spanner vs
   Spanner-RSS — one data center, eight single-threaded shard leaders,
   uniform keys, TrueTime error zero, growing closed-loop client counts.
   The claim: Spanner-RSS's extra protocol machinery costs almost nothing. *)

let run ?(duration_s = 10.0) ?(service_time_us = 15) ?(n_keys = 100_000) ?(seed = 2)
    ?(client_counts = [ 8; 16; 32; 64; 128; 256; 384 ]) () =
  Fmt.pr "=== Figure 6: saturation throughput, 8 shards, single DC, eps=0, uniform keys ===@.";
  Fmt.pr "per-message leader CPU %d us, %gs simulated per point@.@." service_time_us
    duration_s;
  Fmt.pr "  %8s | %12s %9s %8s | %12s %9s %8s | %8s@." "clients" "spanner tps"
    "p50 (ms)" "msg/txn" "rss tps" "p50 (ms)" "msg/txn" "overhead";
  List.iter
    (fun n_clients ->
      let s =
        Harness.spanner_dc ~mode:Spanner.Config.Strict ~n_shards:8 ~service_time_us
          ~n_clients ~n_keys ~duration_s ~seed ()
      in
      let r =
        Harness.spanner_dc ~mode:Spanner.Config.Rss ~n_shards:8 ~service_time_us
          ~n_clients ~n_keys ~duration_s ~seed ()
      in
      Harness.report_check "spanner" s.Harness.Run.check;
      Harness.report_check "spanner-rss" r.Harness.Run.check;
      let tps_s = Harness.Run.gauge s "throughput_tps"
      and tps_r = Harness.Run.gauge r "throughput_tps" in
      Fmt.pr "  %8d | %12.0f %9.2f %8.2f | %12.0f %9.2f %8.2f | %7.1f%%@." n_clients
        tps_s (Harness.Run.gauge s "p50_ms") (Harness.Run.gauge s "msgs_per_txn")
        tps_r (Harness.Run.gauge r "p50_ms") (Harness.Run.gauge r "msgs_per_txn")
        (Stats.Summary.improvement ~baseline:tps_s ~variant:tps_r))
    client_counts;
  Fmt.pr
    "@.(overhead = throughput loss of RSS vs Spanner; msg/txn shows RSS's extra@.";
  Fmt.pr " slow-reply traffic — the paper's 'small number and size of messages')@.@."
