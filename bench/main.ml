(* Benchmark harness entry point. Each target regenerates one of the
   paper's tables or figures (see DESIGN.md's experiment index); the default
   runs everything at the standard sizes. `--quick` shrinks the runs for a
   fast smoke pass. *)

let usage () =
  Fmt.pr
    "usage: bench/main.exe [--quick] [target...]@.targets: table1 fig5 fig6 fig7 \
     fig7tail gryff-overhead ablation micro all (default: all)@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then [ "all" ] else targets in
  let want t = List.mem t targets || List.mem "all" targets in
  if List.mem "--help" targets || List.mem "-h" targets then usage ()
  else begin
    Fmt.pr
      "RSS/RSC reproduction benchmarks%s — shapes, not absolute numbers, are the target@.@."
      (if quick then " (quick mode)" else "");
    if want "table1" then
      if quick then Table1.run ~rounds:20 ~seeds:[ 31; 32 ] () else Table1.run ();
    if want "fig5" then
      if quick then Fig5.run ~duration_s:30.0 () else Fig5.run ();
    if want "fig6" then
      if quick then Fig6.run ~duration_s:4.0 ~client_counts:[ 16; 64; 256 ] ()
      else Fig6.run ();
    if want "fig7" then
      if quick then Fig7.run ~duration_s:40.0 ~write_ratios:[ 0.1; 0.3; 0.5 ] ()
      else Fig7.run ();
    if want "fig7tail" then
      if quick then Fig7.run_tail ~duration_s:120.0 () else Fig7.run_tail ();
    if want "gryff-overhead" then
      if quick then Gryff_overhead.run ~duration_s:4.0 ~client_counts:[ 16; 128 ] ()
      else Gryff_overhead.run ();
    if want "ablation" then
      if quick then begin
        Fmt.pr "=== Ablations (quick) ===@.@.";
        Ablation.tee_slack ~duration_s:20.0 ();
        Ablation.epsilon_sweep ~duration_s:20.0 ();
        Ablation.tmin_scope ~duration_s:20.0 ()
      end
      else Ablation.run ();
    if want "micro" then Micro.run ()
  end
