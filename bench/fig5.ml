(* Figure 5: Spanner vs Spanner-RSS read-only transaction tail latency on
   Retwis at three Zipfian skews, plus the §6.1 claim that RW latency is
   unaffected. One latency-distribution table per sub-figure. *)

let points = [ 50.0; 90.0; 95.0; 99.0; 99.5; 99.9 ]

(* Per-skew session arrival rates: the paper loads each workload to 70-80%
   of its own maximum throughput, which at higher skews is contention-bound
   and therefore lower. *)
let default_loads = [ (0.5, 400.0); (0.75, 40.0); (0.9, 6.0) ]

let run ?(duration_s = 300.0) ?(loads = default_loads) ?(n_keys = 10_000_000)
    ?(seed = 1) () =
  Fmt.pr "=== Figure 5: RO transaction tail latency, Retwis, 3 shards x 3 replicas (CA/VA/IR) ===@.";
  Fmt.pr "partly-open clients (p=0.9, H=0), %d keys, eps=10ms, %gs simulated@.@."
    n_keys duration_s;
  List.iteri
    (fun i (theta, arrival_rate_per_sec) ->
      let sub = [| "5a"; "5b"; "5c" |].(i) in
      Fmt.pr "(offered load: %.0f sessions/s)@." arrival_rate_per_sec;
      let strict =
        Harness.spanner_wan ~mode:Spanner.Config.Strict ~theta ~n_keys
          ~arrival_rate_per_sec ~duration_s ~seed ()
      in
      let rss =
        Harness.spanner_wan ~mode:Spanner.Config.Rss ~theta ~n_keys
          ~arrival_rate_per_sec ~duration_s ~seed ()
      in
      Harness.report_check "spanner" strict.Harness.sp_check;
      Harness.report_check "spanner-rss" rss.Harness.sp_check;
      Stats.Summary.print_latency_table
        ~header:(Fmt.str "Fig. %s — skew %.2f: read-only transaction latency (ms)" sub theta)
        ~rows:[ ("spanner", strict.Harness.sp_ro); ("spanner-rss", rss.Harness.sp_ro) ]
        ~points ();
      (if not (Stats.Recorder.is_empty strict.Harness.sp_ro || Stats.Recorder.is_empty rss.Harness.sp_ro)
       then
         let p999_s = Stats.Recorder.percentile_ms strict.Harness.sp_ro 99.9 in
         let p999_r = Stats.Recorder.percentile_ms rss.Harness.sp_ro 99.9 in
         let p99_s = Stats.Recorder.percentile_ms strict.Harness.sp_ro 99.0 in
         let p99_r = Stats.Recorder.percentile_ms rss.Harness.sp_ro 99.0 in
         Fmt.pr
           "  -> RSS reduces RO p99 by %.0f%% (%.0f -> %.0f ms), p99.9 by %.0f%% (%.0f -> %.0f ms)@."
           (Stats.Summary.improvement ~baseline:p99_s ~variant:p99_r)
           p99_s p99_r
           (Stats.Summary.improvement ~baseline:p999_s ~variant:p999_r)
           p999_s p999_r);
      Fmt.pr "  shard-side RO blocking events: spanner=%d rss=%d (of %d / %d ROs)@."
        strict.Harness.sp_stats.Spanner.Cluster.ro_blocked_at_shards
        rss.Harness.sp_stats.Spanner.Cluster.ro_blocked_at_shards
        strict.Harness.sp_stats.Spanner.Cluster.ro_count
        rss.Harness.sp_stats.Spanner.Cluster.ro_count;
      Stats.Summary.print_latency_table
        ~header:"        read-write transaction latency (ms) — must match"
        ~rows:[ ("spanner", strict.Harness.sp_rw); ("spanner-rss", rss.Harness.sp_rw) ]
        ~points:[ 50.0; 90.0; 99.0 ] ();
      Fmt.pr "@.")
    loads
