(* Figure 5: Spanner vs Spanner-RSS read-only transaction tail latency on
   Retwis at three Zipfian skews, plus the §6.1 claim that RW latency is
   unaffected. One latency-distribution table per sub-figure. *)

let points = [ 50.0; 90.0; 95.0; 99.0; 99.5; 99.9 ]

(* Per-skew session arrival rates: the paper loads each workload to 70-80%
   of its own maximum throughput, which at higher skews is contention-bound
   and therefore lower. *)
let default_loads = [ (0.5, 400.0); (0.75, 40.0); (0.9, 6.0) ]

let run ?(duration_s = 300.0) ?(loads = default_loads) ?(n_keys = 10_000_000)
    ?(seed = 1) () =
  Fmt.pr "=== Figure 5: RO transaction tail latency, Retwis, 3 shards x 3 replicas (CA/VA/IR) ===@.";
  Fmt.pr "partly-open clients (p=0.9, H=0), %d keys, eps=10ms, %gs simulated@.@."
    n_keys duration_s;
  List.iteri
    (fun i (theta, arrival_rate_per_sec) ->
      let sub = [| "5a"; "5b"; "5c" |].(i) in
      Fmt.pr "(offered load: %.0f sessions/s)@." arrival_rate_per_sec;
      let strict =
        Harness.spanner_wan ~mode:Spanner.Config.Strict ~theta ~n_keys
          ~arrival_rate_per_sec ~duration_s ~seed ()
      in
      let rss =
        Harness.spanner_wan ~mode:Spanner.Config.Rss ~theta ~n_keys
          ~arrival_rate_per_sec ~duration_s ~seed ()
      in
      Harness.report_check "spanner" strict.Harness.Run.check;
      Harness.report_check "spanner-rss" rss.Harness.Run.check;
      let ro_s = Harness.Run.latency strict "ro"
      and ro_r = Harness.Run.latency rss "ro" in
      Stats.Summary.print_latency_table
        ~header:(Fmt.str "Fig. %s — skew %.2f: read-only transaction latency (ms)" sub theta)
        ~rows:[ ("spanner", ro_s); ("spanner-rss", ro_r) ]
        ~points ();
      (match
         ( Stats.Recorder.percentile_ms_opt ro_s 99.0,
           Stats.Recorder.percentile_ms_opt ro_r 99.0,
           Stats.Recorder.percentile_ms_opt ro_s 99.9,
           Stats.Recorder.percentile_ms_opt ro_r 99.9 )
       with
      | Some p99_s, Some p99_r, Some p999_s, Some p999_r ->
        Fmt.pr
          "  -> RSS reduces RO p99 by %.0f%% (%.0f -> %.0f ms), p99.9 by %.0f%% (%.0f -> %.0f ms)@."
          (Stats.Summary.improvement ~baseline:p99_s ~variant:p99_r)
          p99_s p99_r
          (Stats.Summary.improvement ~baseline:p999_s ~variant:p999_r)
          p999_s p999_r
      | _ -> ());
      Fmt.pr "  shard-side RO blocking events: spanner=%d rss=%d (of %d / %d ROs)@."
        (Harness.Run.counter strict "ro.blocked_at_shards")
        (Harness.Run.counter rss "ro.blocked_at_shards")
        (Harness.Run.counter strict "ro.count")
        (Harness.Run.counter rss "ro.count");
      Stats.Summary.print_latency_table
        ~header:"        read-write transaction latency (ms) — must match"
        ~rows:
          [
            ("spanner", Harness.Run.latency strict "rw");
            ("spanner-rss", Harness.Run.latency rss "rw");
          ]
        ~points:[ 50.0; 90.0; 99.0 ] ();
      Fmt.pr "@.")
    loads
