(* Bechamel microbenchmarks of protocol-critical paths: one Test.make per
   experiment family, measuring the in-process costs that the simulation
   amortizes (sampling, carstamp ordering, snapshot calculation, checker
   throughput). *)

open Bechamel
open Toolkit

let zipf_test =
  let rng = Sim.Rng.make 1 in
  let z = Workload.Zipf.create ~rng ~n:10_000_000 ~theta:0.9 in
  Test.make ~name:"fig5:zipf-sample-10M-keys" (Staged.stage (fun () -> Workload.Zipf.sample z))

let retwis_test =
  let rng = Sim.Rng.make 2 in
  let r = Workload.Retwis.create ~rng ~n_keys:10_000_000 ~theta:0.75 in
  Test.make ~name:"fig5:retwis-txn-sample" (Staged.stage (fun () -> Workload.Retwis.sample r))

let carstamp_test =
  let a = { Gryff.Carstamp.ts = 12345; rmwc = 3; cid = 7 } in
  let b = { Gryff.Carstamp.ts = 12345; rmwc = 4; cid = 2 } in
  Test.make ~name:"fig7:carstamp-compare" (Staged.stage (fun () -> Gryff.Carstamp.compare a b))

let snapshot_test =
  (* The client-side CalculateSnapshotTS + value selection of Alg. 1. *)
  let versions =
    List.init 16 (fun i -> (i, { Spanner.Types.ts = 1000 + (i * 7); writer = i; value = i }))
  in
  Test.make ~name:"fig5:ro-snapshot-selection"
    (Staged.stage (fun () ->
         List.fold_left
           (fun acc (_, (v : Spanner.Types.version)) -> max acc v.Spanner.Types.ts)
           0 versions))

let witness_test =
  let txns =
    Array.init 64 (fun i ->
        if i mod 2 = 0 then
          {
            Rss_core.Witness.proc = i mod 8;
            reads = [];
            writes = [ (string_of_int (i mod 4), i) ];
            inv = i * 10;
            resp = (i * 10) + 5;
            ts = i;
            rank = 0;
          }
        else
          {
            Rss_core.Witness.proc = i mod 8;
            reads = [ (string_of_int ((i - 1) mod 4), Some (i - 1)) ];
            writes = [];
            inv = i * 10;
            resp = (i * 10) + 5;
            ts = i - 1;
            rank = 1;
          })
  in
  Test.make ~name:"all:witness-check-64-txns"
    (Staged.stage (fun () -> Rss_core.Witness.check ~mode:`Rss txns))

let search_checker_test =
  let h =
    Rss_core.Txn_history.make
      [
        Rss_core.Txn_history.rw ~id:0 ~proc:0 ~writes:[ ("a", 1); ("b", 2) ] ~inv:0
          ~resp:100 ();
        Rss_core.Txn_history.ro ~id:1 ~proc:1
          ~reads:[ ("a", Some 1); ("b", Some 2) ]
          ~inv:10 ~resp:20 ();
        Rss_core.Txn_history.ro ~id:2 ~proc:2 ~reads:[ ("a", None); ("b", None) ]
          ~inv:30 ~resp:40 ();
        Rss_core.Txn_history.rw ~id:3 ~proc:3 ~writes:[ ("c", 3) ] ~inv:50 ~resp:60 ();
      ]
  in
  Test.make ~name:"table1:rss-search-checker-fig4"
    (Staged.stage (fun () -> Rss_core.Check_txn.check h Rss_core.Check_txn.Rss))

let engine_test =
  Test.make ~name:"all:engine-1000-events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 1000 do
           Sim.Engine.schedule e ~after:(i mod 97) (fun () -> ())
         done;
         Sim.Engine.run e))

let run () =
  let tests =
    [
      zipf_test; retwis_test; carstamp_test; snapshot_test; witness_test;
      search_checker_test; engine_test;
    ]
  in
  Fmt.pr "=== Microbenchmarks (bechamel) ===@.@.";
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let instances = Instance.[ monotonic_clock ] in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw)
        instances
    in
    let merged = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
    Hashtbl.iter
      (fun _clock tbl ->
        Hashtbl.iter
          (fun name (ols : Analyze.OLS.t) ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-34s %12.1f ns/op@." name est
            | Some _ | None -> Fmt.pr "  %-34s %12s@." name "n/a")
          tbl)
      merged
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"" [ t ])) tests;
  Fmt.pr "@."
