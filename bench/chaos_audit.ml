(* Long-form chaos audit battery — every nemesis preset against every
   protocol, several seeds each, plus a chaos-wrapped harness benchmark.
   Excluded from tier-1 `dune runtest`; run with:

     dune exec bench/chaos_audit.exe            # full battery
     dune exec bench/chaos_audit.exe -- quick   # one seed per cell *)

let seeds = function
  | [ "quick" ] -> [ 7 ]
  | _ -> [ 7; 23; 101 ]

let duration_s = 20.0

let audit_cell protocol preset ~seed =
  let name =
    Fmt.str "%-12s %-16s seed=%d"
      (Chaos.Audit.protocol_name protocol)
      (Chaos.Nemesis.preset_name preset)
      seed
  in
  let schedule =
    Chaos.Audit.nemesis_schedule protocol preset ~duration_s ~seed
  in
  let failover = Chaos.Nemesis.requires_failover preset in
  let r = Chaos.Audit.run protocol ~schedule ~failover ~duration_s ~seed () in
  let verdict =
    match r.Chaos.Audit.check with
    | Ok () -> "ok"
    | Error m -> Fmt.str "VIOLATION %s" m
  in
  let live = if Chaos.Audit.liveness_ok r then "live" else "STALLED" in
  let failover_summary =
    if failover then
      Fmt.str " vc=%d retries=%d indoubt=%d elect=%dus"
        r.Chaos.Audit.view_changes r.Chaos.Audit.rpc_retries
        r.Chaos.Audit.in_doubt_resolved r.Chaos.Audit.max_election_us
    else ""
  in
  Fmt.pr "  %s  %-10s %-8s ops=%-6d unacked=%-4d drops=%d/%d/%d%s@." name
    verdict live r.Chaos.Audit.ops_completed r.Chaos.Audit.unacked_commits
    r.Chaos.Audit.dropped_crash r.Chaos.Audit.dropped_partition
    r.Chaos.Audit.dropped_loss failover_summary;
  (r.Chaos.Audit.check = Ok (), Chaos.Audit.liveness_ok r)

let battery seeds =
  Fmt.pr "== nemesis battery (%g s simulated per cell) ==@." duration_s;
  let ok = ref 0 and bad = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun (_, preset) ->
          List.iter
            (fun seed ->
              let checked, live = audit_cell protocol preset ~seed in
              if checked && live then incr ok else incr bad)
            seeds)
        Chaos.Nemesis.presets)
    Chaos.Audit.protocols;
  Fmt.pr "battery: %d passed, %d failed@.@." !ok !bad;
  !bad = 0

(* The harness integration path: the paper's §6.1 benchmark wrapped in a
   partition-heal schedule, fault accounting through the Summary tables. *)
let harness_demo () =
  Fmt.pr "== chaos-wrapped spanner_wan (partition-heal) ==@.";
  let chaos =
    Chaos.Nemesis.generate Chaos.Nemesis.Partition_heal ~n_sites:3
      ~duration_us:(Sim.Engine.sec duration_s) ~seed:7 ()
  in
  let r =
    Harness.spanner_wan
      ~env:Harness.Env.(default |> with_chaos chaos)
      ~mode:Spanner.Config.Rss ~theta:0.5 ~n_keys:5_000
      ~arrival_rate_per_sec:400.0 ~duration_s ~seed:7 ()
  in
  Harness.Run.print_summary ~header:"spanner-rss" r;
  Fmt.pr "@.";
  Fmt.pr "== chaos-wrapped spanner_wan (leader-kill, failover armed) ==@.";
  let lk =
    Harness.spanner_wan
      ~env:
        Harness.Env.(
          default
          |> with_chaos
               (Chaos.Nemesis.generate Chaos.Nemesis.Leader_kill ~n_sites:3
                  ~leaders:[ 0; 1; 2 ]
                  ~duration_us:(Sim.Engine.sec duration_s) ~seed:7 ())
          |> with_failover true)
      ~mode:Spanner.Config.Rss ~theta:0.5 ~n_keys:5_000
      ~arrival_rate_per_sec:100.0 ~duration_s ~seed:7 ()
  in
  Harness.Run.print_summary ~header:"spanner-rss failover" lk;
  Fmt.pr "@.";
  let gr =
    Harness.gryff_wan
      ~env:
        Harness.Env.(
          default
          |> with_chaos
               (Chaos.Nemesis.generate Chaos.Nemesis.Link_loss ~n_sites:5
                  ~duration_us:(Sim.Engine.sec duration_s) ~seed:7 ()))
      ~mode:Gryff.Config.Rsc ~conflict:0.1 ~write_ratio:0.3 ~n_keys:2_000
      ~duration_s ~seed:7 ()
  in
  Fmt.pr "== chaos-wrapped gryff_wan (link-loss) ==@.";
  Harness.Run.print_summary ~header:"gryff-rsc" gr;
  Harness.Run.passed r && Harness.Run.passed lk && Harness.Run.passed gr

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let battery_ok = battery (seeds args) in
  let harness_ok = harness_demo () in
  if not (battery_ok && harness_ok) then exit 1
