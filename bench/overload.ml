(* Overload & gray-failure robustness suite.

   Two experiments, both machine-readable (default BENCH_overload.json):

   1. Offered-load ramp (spanner, open system). Partly-open Retwis
      sessions arrive at a ramp of rates against a 4-shard deployment with
      a real per-message server cost. The *control* runs bare: past the
      saturation knee the backlog grows without bound and goodput
      (completions within the client deadline) collapses. The *protected*
      runs with the full overload stack — deadline propagation with
      expired-work drops, bounded queues with load shedding, and a
      fleet-wide retry budget — and must sustain most of its peak goodput
      at twice the knee.

   2. Hedged reads under a slow-node gray failure (gryff, WAN). The
      slow-node nemesis degrades one site (station slowdown + link delay,
      no crash). A bare-quorum fan-out strands its read tail behind the
      victim; the hedged policy re-widens the fan-out after a short delay
      and must cut read p99 by at least 3x.

   Protected/hedged runs verify their histories online; a consistency
   failure fails the suite. A protected run is repeated to prove the
   whole stack is deterministic.

     dune exec bench/overload.exe --              # full sizes, ~1 min
     dune exec bench/overload.exe -- --smoke      # CI sizes

   Exit status 1 on: any online-checked verification failure, control
   collapse not observed, protected goodput floor missed, hedge ratio
   missed (full runs only), sheds observed with protections off, or a
   repeat-determinism mismatch. *)

let verdict_name = function
  | Harness.Run.Pass -> "pass"
  | Harness.Run.Fail _ -> "fail"
  | Harness.Run.Unknown _ -> "unknown"

let verdict_detail = function
  | Harness.Run.Pass -> ""
  | Harness.Run.Fail m | Harness.Run.Unknown m -> m

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type measured = {
  completed : int;  (* post-warm-up completions (all recorders) *)
  good : int;  (* completions within the client deadline *)
  goodput_tps : float;
  p50_ms : float option;
  p99_ms : float option;
  shed : int;
  expired : int;
  abandoned : int;
  budget_denied : int;
  hedges : int;
  hedge_wins : int;
  verdict : string;
  detail : string;
}

(* Completions within [deadline_us], across every latency recorder. The
   recorders only hold post-warm-up completions, so this is the goodput
   numerator directly; abandoned operations never complete and never
   appear. *)
let count_good r ~deadline_us =
  List.fold_left
    (fun (n_all, n_good) (_, rec_) ->
      let a = Stats.Recorder.to_sorted_array rec_ in
      let good = ref 0 in
      Array.iter (fun l -> if l <= deadline_us then incr good) a;
      (n_all + Array.length a, n_good + !good))
    (0, 0)
    r.Harness.Run.latencies

let measure ~deadline_us ~measured_s (r : Harness.Run.t) =
  let completed, good = count_good r ~deadline_us in
  let merged =
    List.fold_left
      (fun acc (_, rec_) -> Stats.Recorder.merge acc rec_)
      (Stats.Recorder.create ()) r.Harness.Run.latencies
  in
  {
    completed;
    good;
    goodput_tps = float_of_int good /. measured_s;
    p50_ms = Stats.Recorder.percentile_ms_opt merged 50.0;
    p99_ms = Stats.Recorder.percentile_ms_opt merged 99.0;
    shed = Harness.Run.counter r "flow.shed";
    expired = Harness.Run.counter r "flow.expired";
    abandoned = Harness.Run.counter r "flow.abandoned";
    budget_denied = Harness.Run.counter r "flow.budget.denied";
    hedges = Harness.Run.counter r "flow.hedges";
    hedge_wins = Harness.Run.counter r "flow.hedge_wins";
    verdict = verdict_name r.Harness.Run.check;
    detail = verdict_detail r.Harness.Run.check;
  }

(* A canonical digest of a run's observable outcome: every completion
   latency plus the counters the suite gates on. Two runs of the same
   configuration must produce the same digest — the whole protection
   stack draws no randomness of its own. *)
let run_digest (r : Harness.Run.t) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, rec_) ->
      Buffer.add_string b name;
      Array.iter
        (fun l -> Buffer.add_string b (string_of_int l ^ ","))
        (Stats.Recorder.to_sorted_array rec_))
    r.Harness.Run.latencies;
  List.iter
    (fun k -> Buffer.add_string b (Printf.sprintf "%s=%d;" k (Harness.Run.counter r k)))
    [
      "flow.shed"; "flow.expired"; "flow.abandoned"; "flow.budget.denied";
      "net.messages"; "rw.committed"; "ro.count";
    ];
  Buffer.add_string b (string_of_int r.Harness.Run.duration_us);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Experiment 1: offered-load ramp                                     *)
(* ------------------------------------------------------------------ *)

(* Open-system deployment: 4 shards in one DC with a 15 us per-message
   service cost, partly-open Retwis sessions. The knee sits where the
   busiest shard leader's station saturates. *)
let ramp_config ~mode =
  Spanner.Config.single_dc ~mode ~n_shards:4 ~service_time_us:15 ()

let ramp_deadline_us = 25_000

let ramp_protection =
  {
    Harness.flow_default with
    Harness.fl_admission =
      Some { Sim.Station.max_queue = 256; max_sojourn_us = 8_000 };
    fl_drop_expired = true;
    fl_budget = Some (64, 2_000);
  }

let ramp_run ~protected ~rate ~duration_s ~seed =
  let env =
    if protected then
      Harness.Env.(
        default |> with_check `Online
        |> with_deadline_us (Some ramp_deadline_us)
        |> with_flow (Some ramp_protection))
    else Harness.Env.(default |> with_check `No_check)
  in
  Harness.spanner_wan
    ~config:(Some (ramp_config ~mode:Spanner.Config.Rss))
    ~env ~mode:Spanner.Config.Rss ~theta:0.3 ~n_keys:4000
    ~arrival_rate_per_sec:rate ~duration_s ~seed ()

(* ------------------------------------------------------------------ *)
(* Experiment 2: hedged reads under a slow node                        *)
(* ------------------------------------------------------------------ *)

let hedge_us = 15_000

(* The slow-node preset draws 20-80 ms of link lag — a nuisance next to
   this deployment's WAN round trips. Amplify the lag component so the
   victim is decisively gray (seconds of lag, still alive), which is the
   regime hedging exists for; the slowdown windows and victim choice stay
   exactly the preset's. *)
let amplify_lag ev =
  match ev.Chaos.Schedule.fault with
  | Chaos.Schedule.Delay { links; extra_us } ->
    {
      ev with
      Chaos.Schedule.fault =
        Chaos.Schedule.Delay { links; extra_us = extra_us * 20 };
    }
  | _ -> ev

let hedge_run ~fanout ~duration_s ~seed =
  let schedule =
    Chaos.Audit.nemesis_schedule Chaos.Audit.Gryff_rsc Chaos.Nemesis.Slow_node
      ~duration_s ~seed
    |> List.map amplify_lag
  in
  (* Clients run off the victims: hedging recovers a *server-side* tail —
     a client whose own links lag is slow no matter whom it asks. The
     preset may open more than one slowdown window, each with its own
     victim, so every slowed site is excluded. *)
  let victims =
    List.filter_map
      (fun ev ->
        match ev.Chaos.Schedule.fault with
        | Chaos.Schedule.Slow { site; _ } -> Some site
        | _ -> None)
      schedule
  in
  let client_sites =
    Array.of_list (List.filter (fun s -> not (List.mem s victims)) [ 0; 1; 2; 3; 4 ])
  in
  let flow =
    {
      Harness.flow_default with
      Harness.fl_gryff_fanout = Some fanout;
      fl_hedge_us = hedge_us;
    }
  in
  let env =
    Harness.Env.(
      default |> with_check `Online |> with_chaos schedule
      |> with_flow (Some flow))
  in
  Harness.gryff_wan ~client_sites ~env ~mode:Gryff.Config.Rsc ~conflict:0.05
    ~write_ratio:0.2 ~n_keys:50_000 ~duration_s ~seed ()

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; the repo deliberately has no JSON dep)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let json_float_opt = function None -> "null" | Some f -> json_float f

let measured_json b m =
  Printf.bprintf b
    "{\"completed\": %d, \"good\": %d, \"goodput_tps\": %s, \"p50_ms\": %s, \
     \"p99_ms\": %s, \"shed\": %d, \"expired\": %d, \"abandoned\": %d, \
     \"budget_denied\": %d, \"hedges\": %d, \"hedge_wins\": %d, \
     \"verdict\": \"%s\", \"detail\": \"%s\"}"
    m.completed m.good (json_float m.goodput_tps) (json_float_opt m.p50_ms)
    (json_float_opt m.p99_ms) m.shed m.expired m.abandoned m.budget_denied
    m.hedges m.hedge_wins m.verdict (json_escape m.detail)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_overload.json" in
  let seed = ref 42 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " CI sizes (seconds, not minutes)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_overload.json)");
      ("--seed", Arg.Set_int seed, "N workload seed (default 42)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "overload [--smoke] [--out FILE] [--seed N]";
  let failed = ref false in
  let fail fmt = Printf.ksprintf (fun m -> Printf.printf "   %s\n%!" m; failed := true) fmt in
  let b = Buffer.create 8192 in
  Printf.bprintf b
    "{\n  \"schema\": \"rss-repro/overload/v1\",\n  \"smoke\": %b,\n  \
     \"seed\": %d,\n"
    !smoke !seed;

  (* --- Experiment 1: offered-load ramp --- *)
  let duration_s = if !smoke then 2.0 else 5.0 in
  let measured_s = duration_s *. 0.9 in
  (* Rates in sessions/s; a session issues ~10 Retwis transactions. The
     knee of this deployment sits at the third point; the last point is
     twice that. *)
  let rates = [ 1_400.0; 2_200.0; 2_800.0; 5_600.0 ] in
  Printf.printf "== offered-load ramp (spanner, %g simulated s/point) ==\n%!"
    duration_s;
  let points =
    List.map
      (fun rate ->
        let control =
          measure ~deadline_us:ramp_deadline_us ~measured_s
            (ramp_run ~protected:false ~rate ~duration_s ~seed:!seed)
        in
        let protected_ =
          measure ~deadline_us:ramp_deadline_us ~measured_s
            (ramp_run ~protected:true ~rate ~duration_s ~seed:!seed)
        in
        Printf.printf
          "   rate %6.0f/s  control %8.0f good tps (p99 %s ms)   protected \
           %8.0f good tps  shed %d expired %d verdict=%s\n%!"
          rate control.goodput_tps
          (match control.p99_ms with
          | Some p -> Printf.sprintf "%.1f" p
          | None -> "n/a")
          protected_.goodput_tps protected_.shed protected_.expired
          protected_.verdict;
        (rate, control, protected_))
      rates
  in
  let peak =
    List.fold_left (fun acc (_, c, _) -> Float.max acc c.goodput_tps) 0.0 points
  in
  let _, top_control, top_protected =
    List.nth points (List.length points - 1)
  in
  let control_min_frac = top_control.goodput_tps /. Float.max 1e-9 peak in
  let protected_top_frac = top_protected.goodput_tps /. Float.max 1e-9 peak in
  let control_collapse = control_min_frac < 0.40 in
  let control_sheds =
    List.fold_left (fun acc (_, c, _) -> acc + c.shed + c.expired) 0 points
  in
  let protected_verdicts_pass =
    List.for_all (fun (_, _, p) -> p.verdict = "pass") points
  in
  Printf.printf
    "   peak %8.0f good tps; control at top rate %.0f%%; protected at top \
     rate %.0f%%\n%!"
    peak (control_min_frac *. 100.0)
    (protected_top_frac *. 100.0);
  if not control_collapse then
    fail "NO COLLAPSE: control kept %.0f%% of peak goodput at top rate"
      (control_min_frac *. 100.0);
  if protected_top_frac < 0.70 then
    fail "GOODPUT FLOOR MISSED: protected %.0f%% of peak at top rate < 70%%"
      (protected_top_frac *. 100.0);
  if control_sheds <> 0 then
    fail "UNARMED SHEDS: %d sheds/expiries with protections off" control_sheds;
  if not protected_verdicts_pass then
    fail "CONSISTENCY FAILURE in a protected ramp run";
  Printf.bprintf b
    "  \"ramp\": {\n    \"deadline_us\": %d,\n    \"rates\": [%s],\n    \
     \"points\": [\n"
    ramp_deadline_us
    (String.concat ", " (List.map (fun r -> json_float r) rates));
  List.iteri
    (fun i (rate, c, p) ->
      Printf.bprintf b "      {\"rate\": %s, \"control\": " (json_float rate);
      measured_json b c;
      Buffer.add_string b ", \"protected\": ";
      measured_json b p;
      Printf.bprintf b "}%s\n" (if i < List.length points - 1 then "," else ""))
    points;
  Printf.bprintf b
    "    ],\n    \"peak_goodput_tps\": %s,\n    \"control_min_frac\": %s,\n    \
     \"control_collapse\": %b,\n    \"protected_top_frac\": %s,\n    \
     \"protected_ok\": %b,\n    \"control_sheds\": %d,\n    \
     \"protected_verdicts_pass\": %b\n  },\n"
    (json_float peak) (json_float control_min_frac) control_collapse
    (json_float protected_top_frac)
    (protected_top_frac >= 0.70)
    control_sheds protected_verdicts_pass;

  (* --- Experiment 2: hedged reads under a slow node --- *)
  let hduration_s = if !smoke then 8.0 else 20.0 in
  Printf.printf "== hedged reads under slow-node (gryff, %g simulated s) ==\n%!"
    hduration_s;
  let unhedged =
    hedge_run ~fanout:Gryff.Protocol.Fan_quorum ~duration_s:hduration_s
      ~seed:!seed
  in
  let hedged =
    hedge_run ~fanout:Gryff.Protocol.Hedged ~duration_s:hduration_s ~seed:!seed
  in
  let read_p99 r = Stats.Recorder.percentile_ms_opt (Harness.Run.latency r "read") 99.0 in
  let un_p99 = read_p99 unhedged and h_p99 = read_p99 hedged in
  let ratio =
    match (un_p99, h_p99) with
    | Some u, Some h when h > 0.0 -> u /. h
    | _ -> nan
  in
  let hedges = Harness.Run.counter hedged "flow.hedges" in
  let hedge_wins = Harness.Run.counter hedged "flow.hedge_wins" in
  let hedge_verdicts_pass =
    Harness.Run.passed unhedged && Harness.Run.passed hedged
  in
  Printf.printf
    "   read p99: bare quorum %s ms, hedged %s ms (%.1fx); %d hedges, %d \
     wins; verdicts %s/%s\n%!"
    (match un_p99 with Some p -> Printf.sprintf "%.1f" p | None -> "n/a")
    (match h_p99 with Some p -> Printf.sprintf "%.1f" p | None -> "n/a")
    ratio hedges hedge_wins
    (verdict_name unhedged.Harness.Run.check)
    (verdict_name hedged.Harness.Run.check);
  if Float.is_nan ratio || ratio < 3.0 then
    fail "HEDGE RATIO MISSED: bare-quorum p99 only %.1fx the hedged p99" ratio;
  if hedges = 0 || hedge_wins = 0 then
    fail "HEDGING INERT: %d hedges, %d wins" hedges hedge_wins;
  if not hedge_verdicts_pass then
    fail "CONSISTENCY FAILURE in a slow-node hedging run";
  Printf.bprintf b
    "  \"hedge\": {\n    \"preset\": \"slow-node\",\n    \"hedge_us\": %d,\n    \
     \"unhedged_p99_ms\": %s,\n    \"hedged_p99_ms\": %s,\n    \"ratio\": \
     %s,\n    \"hedges\": %d,\n    \"hedge_wins\": %d,\n    \
     \"verdicts_pass\": %b,\n    \"ok\": %b\n  },\n"
    hedge_us (json_float_opt un_p99) (json_float_opt h_p99) (json_float ratio)
    hedges hedge_wins hedge_verdicts_pass
    ((not (Float.is_nan ratio)) && ratio >= 3.0);

  (* --- Repeat determinism --- *)
  let det_rate = List.nth rates (List.length rates - 1) in
  let digest_of () =
    run_digest (ramp_run ~protected:true ~rate:det_rate ~duration_s ~seed:!seed)
  in
  let d1 = digest_of () in
  let d2 = digest_of () in
  Printf.printf "== repeat determinism ==\n   %s %s %s\n%!" d1
    (if d1 = d2 then "==" else "!=")
    d2;
  if d1 <> d2 then fail "NON-DETERMINISM: protected run digests differ";
  Printf.bprintf b
    "  \"determinism\": {\"digest_a\": \"%s\", \"digest_b\": \"%s\", \"ok\": \
     %b},\n  \"failed\": %b\n}\n"
    d1 d2 (d1 = d2) !failed;

  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if !failed then exit 1
