(* Live-reshard benchmark: migrate the Zipfian-hot eighth of the keyspace
   to another shard mid-workload and measure what elasticity costs.

   Four seeded runs over the §6.1 WAN deployment (Spanner-RSS, theta 0.9 so
   the moved range really is hot), all online-checked:

     baseline   -- no migration; the latency/verdict reference
     reshard    -- one fenced two-phase migration at 45% of the run
     reshard(2) -- the same run again; its history digest must match run 2
                   byte for byte (migration machinery must stay inside the
                   deterministic schedule)
     no-fence   -- the unsafe mutation control: the same migration with the
                   t_m fence/drain/barrier skipped. Writes committing at the
                   source during the ship window are missing at the
                   destination, and the online checker must flag the
                   resulting stale read.

   Output is machine-readable JSON (default BENCH_reshard.json):

     dune exec bench/reshard.exe --             # full size, ~1 min
     dune exec bench/reshard.exe -- --smoke     # CI size, a few seconds

   Exit status 1 unless: baseline and reshard pass the checker, the
   migration completes (>= 1 completed, 0 failed, keys actually moved),
   the repeated run is byte-identical, and the no-fence control fails. *)

let verdict_name = function
  | Harness.Run.Pass -> "pass"
  | Harness.Run.Fail _ -> "fail"
  | Harness.Run.Unknown _ -> "unknown"

let verdict_detail = function
  | Harness.Run.Pass -> ""
  | Harness.Run.Fail m | Harness.Run.Unknown m -> m

type measured = {
  name : string;
  verdict : string;
  detail : string;
  digest : string;  (* MD5 of the marshalled history: determinism witness *)
  n_ops : int;
  sim_s : float;
  cpu_s : float;
  ro_p50_us : float;
  ro_p99_us : float;
  rw_p50_us : float;
  rw_p99_us : float;
  epoch : int;
  migrations : int;
  migrations_failed : int;
  migration_retries : int;
  keys_moved : int;
  redirects : int;
  fence_blocked : int;
  fence_hold_us : int;
  max_fence_hold_us : int;
  directory_appends : int;
}

let history_digest (r : Harness.Run.t) =
  match r.Harness.Run.records with
  | Harness.Run.Spanner_txns a -> Digest.to_hex (Digest.string (Marshal.to_string a []))
  | Harness.Run.Gryff_ops a -> Digest.to_hex (Digest.string (Marshal.to_string a []))

let pct rec_ p =
  match Stats.Recorder.percentile_opt rec_ p with Some v -> v | None -> 0.0

let measure ~name ~reshard ~theta ~n_keys ~rate ~duration_s ~seed =
  let t0 = Sys.time () in
  let r =
    Harness.spanner_wan
      ~env:Harness.Env.(default |> with_check `Online |> with_reshard reshard)
      ~mode:Spanner.Config.Rss ~theta ~n_keys ~arrival_rate_per_sec:rate
      ~duration_s ~seed ()
  in
  let cpu_s = Sys.time () -. t0 in
  let c = Harness.Run.counter r in
  let ro = Harness.Run.latency r "ro" and rw = Harness.Run.latency r "rw" in
  ( r,
    {
      name;
      verdict = verdict_name r.Harness.Run.check;
      detail = verdict_detail r.Harness.Run.check;
      digest = history_digest r;
      n_ops = Harness.Run.n_records r;
      sim_s = Sim.Engine.to_sec r.Harness.Run.duration_us;
      cpu_s;
      ro_p50_us = pct ro 50.0;
      ro_p99_us = pct ro 99.0;
      rw_p50_us = pct rw 50.0;
      rw_p99_us = pct rw 99.0;
      epoch = c "place.epoch";
      migrations = c "place.migrations";
      migrations_failed = c "place.migrations_failed";
      migration_retries = c "place.migration_retries";
      keys_moved = c "place.keys_moved";
      redirects = c "place.redirects";
      fence_blocked = c "place.fence_blocked";
      fence_hold_us = c "place.fence_hold_us";
      max_fence_hold_us = c "place.max_fence_hold_us";
      directory_appends = c "place.directory_appends";
    } )

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; the repo deliberately has no JSON dep)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let measured_json b m =
  Printf.bprintf b
    "{\"name\": \"%s\", \"verdict\": \"%s\", \"detail\": \"%s\", \
     \"digest\": \"%s\", \"n_ops\": %d, \"sim_s\": %s, \"cpu_s\": %s, \
     \"ro_p50_us\": %s, \"ro_p99_us\": %s, \"rw_p50_us\": %s, \
     \"rw_p99_us\": %s, \"epoch\": %d, \"migrations\": %d, \
     \"migrations_failed\": %d, \"migration_retries\": %d, \
     \"keys_moved\": %d, \"redirects\": %d, \"fence_blocked\": %d, \
     \"fence_hold_us\": %d, \"max_fence_hold_us\": %d, \
     \"directory_appends\": %d}"
    m.name m.verdict (json_escape m.detail) m.digest m.n_ops
    (json_float m.sim_s) (json_float m.cpu_s) (json_float m.ro_p50_us)
    (json_float m.ro_p99_us) (json_float m.rw_p50_us) (json_float m.rw_p99_us)
    m.epoch m.migrations m.migrations_failed m.migration_retries m.keys_moved
    m.redirects m.fence_blocked m.fence_hold_us m.max_fence_hold_us
    m.directory_appends

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_reshard.json" in
  let seed = ref 42 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " CI sizes (seconds, not a minute)");
      ( "--out",
        Arg.Set_string out,
        "FILE output path (default BENCH_reshard.json)" );
      ("--seed", Arg.Set_int seed, "N workload seed (default 42)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "reshard [--smoke] [--out FILE] [--seed N]";
  let seed = !seed in
  let n_keys = if !smoke then 4_000 else 20_000 in
  let duration_s = if !smoke then 6.0 else 20.0 in
  let rate = if !smoke then 60.0 else 120.0 in
  let theta = 0.9 in
  let hot_hi = n_keys / 8 in
  let spec no_fence =
    [
      {
        Harness.rs_at = 0.45;
        rs_lo = 0;
        rs_hi = hot_hi;
        rs_dst = 1;
        rs_no_fence = no_fence;
      };
    ]
  in
  let report m =
    Printf.printf
      "   %-10s verdict=%-7s ops=%6d  migrations=%d/%d  keys=%5d  \
       redirects=%4d  fence=%d us (max %d)\n\
       %!"
      m.name m.verdict m.n_ops m.migrations
      (m.migrations + m.migrations_failed)
      m.keys_moved m.redirects m.fence_hold_us m.max_fence_hold_us
  in
  Printf.printf "== reshard bench (hot range [0,%d) of %d keys, %.0f sim-s) ==\n%!"
    hot_hi n_keys duration_s;
  let _, base =
    measure ~name:"baseline" ~reshard:[] ~theta ~n_keys ~rate ~duration_s ~seed
  in
  report base;
  let _, live =
    measure ~name:"reshard" ~reshard:(spec false) ~theta ~n_keys ~rate
      ~duration_s ~seed
  in
  report live;
  let _, live2 =
    measure ~name:"reshard-2" ~reshard:(spec false) ~theta ~n_keys ~rate
      ~duration_s ~seed
  in
  report live2;
  let _, nofence =
    measure ~name:"no-fence" ~reshard:(spec true) ~theta ~n_keys ~rate
      ~duration_s ~seed
  in
  report nofence;
  let deterministic = live.digest = live2.digest in
  let migrated_ok =
    live.migrations >= 1 && live.migrations_failed = 0 && live.keys_moved >= 1
    && live.epoch >= 1
  in
  let ok =
    base.verdict = "pass" && live.verdict = "pass" && migrated_ok
    && deterministic
    && nofence.verdict = "fail"
  in
  Printf.printf "deterministic: %b   no-fence caught: %b   ok: %b\n%!"
    deterministic
    (nofence.verdict = "fail")
    ok;
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"schema\": \"rss-repro/reshard/v1\",\n  \"smoke\": %b,\n  \
     \"seed\": %d,\n  \"n_keys\": %d,\n  \"hot_range\": [0, %d],\n  \
     \"runs\": [\n"
    !smoke seed n_keys hot_hi;
  List.iteri
    (fun i m ->
      Buffer.add_string b "    ";
      measured_json b m;
      Buffer.add_string b (if i < 3 then ",\n" else "\n"))
    [ base; live; live2; nofence ];
  Printf.bprintf b
    "  ],\n  \"deterministic\": %b,\n  \"no_fence_caught\": %b,\n  \
     \"ok\": %b\n}\n"
    deterministic
    (nofence.verdict = "fail")
    ok;
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if not ok then exit 1
