(* Storage-fault battery: every protocol under every disk-fault preset.

   For each (protocol, preset, seed) the audit driver runs with a
   Sim.Durable.Faults control armed: nemesis crashes tear log tails,
   misdirect writes mid-log and resurface stale sectors, the background
   scrub pass hunts latent damage, and the repair policy (truncate /
   quarantine + peer state transfer) must bring every member back. Gryff
   keeps no durable stores, so its runs prove the battery degrades cleanly
   to plain crash schedules.

   Two controls ride along:

     repeat     -- one faulted run repeated; its history digest must match
                   byte for byte (fault placement is seeded, so disk chaos
                   must stay inside the deterministic schedule)
     integrity  -- the same damage against checksum-blind stores
                   (df_integrity = false): recovery silently replays
                   misdirected writes, and the consistency checker (or the
                   shard rebuild's own invariants) must flag the result

   Output is machine-readable JSON (default BENCH_durable.json):

     dune exec bench/durable_faults.exe --             # full battery
     dune exec bench/durable_faults.exe -- --smoke     # CI size

   Exit status 1 unless: every faulted run passes the checker, resumes
   liveness after heal, and ends with zero unrepaired quarantined members;
   the repeated run is byte-identical; and the integrity-disabled control
   is caught. *)

let presets =
  [ Chaos.Nemesis.Disk_tear; Chaos.Nemesis.Bit_rot; Chaos.Nemesis.Torn_migration ]

type measured = {
  name : string;
  verdict : string;  (* pass / fail *)
  detail : string;
  live : bool;
  digest : string;  (* MD5 of the canonical history trace *)
  n_ops : int;
  cpu_s : float;
  disk_torn : int;
  disk_corrupt : int;
  disk_resurfaced : int;
  disk_lost_ints : int;
  disk_crashes : int;
  scrub_passes : int;
  scrub_flagged : int;
  repairs_torn : int;
  repairs_quarantined : int;
  repairs_peer : int;
  place_repairs : int;
  unrepaired : int;
}

let disk_faults_for preset ~seed =
  match Chaos.Nemesis.disk_spec preset with
  | Some spec -> Chaos.Audit.default_disk_faults ~spec ~seed ()
  | None -> Chaos.Audit.default_disk_faults ~seed ()

let measure ?disk_faults ~name ~protocol ~preset ~duration_s ~seed () =
  let schedule = Chaos.Audit.nemesis_schedule protocol preset ~duration_s ~seed in
  let disk_faults =
    match disk_faults with Some df -> df | None -> disk_faults_for preset ~seed
  in
  let n_migrations = if Chaos.Nemesis.requires_reshard preset then 2 else 0 in
  let t0 = Sys.time () in
  let r =
    Chaos.Audit.run protocol ~schedule ~disk_faults ~failover:true ~n_migrations
      ~duration_s ~seed ()
  in
  let cpu_s = Sys.time () -. t0 in
  {
    name;
    verdict = (match r.Chaos.Audit.check with Ok () -> "pass" | Error _ -> "fail");
    detail = (match r.Chaos.Audit.check with Ok () -> "" | Error m -> m);
    live = Chaos.Audit.liveness_ok r;
    digest = Digest.to_hex (Digest.string r.Chaos.Audit.trace);
    n_ops = r.Chaos.Audit.history_len;
    cpu_s;
    disk_torn = r.Chaos.Audit.disk_torn;
    disk_corrupt = r.Chaos.Audit.disk_corrupt;
    disk_resurfaced = r.Chaos.Audit.disk_resurfaced;
    disk_lost_ints = r.Chaos.Audit.disk_lost_ints;
    disk_crashes = r.Chaos.Audit.disk_crashes;
    scrub_passes = r.Chaos.Audit.scrub_passes;
    scrub_flagged = r.Chaos.Audit.scrub_flagged;
    repairs_torn = r.Chaos.Audit.repairs_torn;
    repairs_quarantined = r.Chaos.Audit.repairs_quarantined;
    repairs_peer = r.Chaos.Audit.repairs_peer;
    place_repairs = r.Chaos.Audit.place_repairs;
    unrepaired = r.Chaos.Audit.unrepaired;
  }

(* The broken-control configuration: checksum-blind stores under a crafted
   crash schedule that forces a corrupt log to win an election. Crash all
   three sites at once, then crash-cycle the two followers while the shard-0
   leader stays down: each cycle plants another misdirected frame in the
   followers' logs, no appends happen (no leader), so when the lease expires
   the view-1 candidate's own blind-corrupt log ties or beats the other
   contribution and is installed cluster-wide. The rebuild then replays the
   misdirected frames: either the consistency checker flags a lost write
   (stale / nil read), or the rebuild itself trips over the garbage
   (non-monotonic commit timestamps) — both count as "caught". With
   integrity on, the same schedule quarantines every damaged member and the
   group fail-stops instead (see test/test_durable.ml). A benign seed may
   misdirect only frames nobody rereads, so the control scans workload seeds
   until one is caught (bounded, deterministic). *)
let control_schedule =
  Chaos.Schedule.
    [
      at_s 2.0 (Crash [ 0; 1; 2 ]);
      at_s 2.06 (Recover [ 1; 2 ]);
      at_s 2.12 (Crash [ 1; 2 ]);
      at_s 2.18 (Recover [ 1; 2 ]);
      at_s 2.24 (Crash [ 1; 2 ]);
      at_s 2.3 (Recover [ 1; 2 ]);
      at_s 2.36 (Crash [ 1; 2 ]);
      at_s 2.42 (Recover [ 1; 2 ]);
      at_s 3.5 (Recover [ 0 ]);
    ]

let control_spec =
  {
    Sim.Durable.Faults.tear_prob = 0.0;
    (* a torn tail would just shorten the log out of election contention *)
    max_tear = 1;
    corrupt_prob = 1.0;
    stale_prob = 0.0;
    max_stale = 1;
    lost_int_prob = 0.0;
  }

let integrity_control ~base_seed ~max_tries =
  let try_seed seed =
    let df =
      {
        (Chaos.Audit.default_disk_faults ~spec:control_spec ~seed ()) with
        Chaos.Audit.df_integrity = false;
      }
    in
    let name = Printf.sprintf "integrity-off/seed=%d" seed in
    match
      Chaos.Audit.run Chaos.Audit.Spanner_rss ~schedule:control_schedule
        ~disk_faults:df ~failover:true ~duration_s:10.0 ~seed ()
    with
    | r -> (
      match r.Chaos.Audit.check with
      | Ok () -> None
      | Error m -> Some (name, m))
    | exception e -> Some (name, "replay raised: " ^ Printexc.to_string e)
  in
  let rec scan i =
    if i >= max_tries then None
    else
      match try_seed (base_seed + i) with
      | Some caught -> Some caught
      | None -> scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; the repo deliberately has no JSON dep)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let measured_json b m =
  Printf.bprintf b
    "{\"name\": \"%s\", \"verdict\": \"%s\", \"detail\": \"%s\", \
     \"live\": %b, \"digest\": \"%s\", \"n_ops\": %d, \"cpu_s\": %s, \
     \"disk_torn\": %d, \"disk_corrupt\": %d, \"disk_resurfaced\": %d, \
     \"disk_lost_ints\": %d, \"disk_crashes\": %d, \"scrub_passes\": %d, \
     \"scrub_flagged\": %d, \"repairs_torn\": %d, \
     \"repairs_quarantined\": %d, \"repairs_peer\": %d, \
     \"place_repairs\": %d, \"unrepaired\": %d}"
    m.name m.verdict (json_escape m.detail) m.live m.digest m.n_ops
    (json_float m.cpu_s) m.disk_torn m.disk_corrupt m.disk_resurfaced
    m.disk_lost_ints m.disk_crashes m.scrub_passes m.scrub_flagged
    m.repairs_torn m.repairs_quarantined m.repairs_peer m.place_repairs
    m.unrepaired

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_durable.json" in
  let seed = ref 42 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " CI sizes (seconds, not minutes)");
      ( "--out",
        Arg.Set_string out,
        "FILE output path (default BENCH_durable.json)" );
      ("--seed", Arg.Set_int seed, "N base seed (default 42)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "durable_faults [--smoke] [--out FILE] [--seed N]";
  let base_seed = !seed in
  let duration_s = if !smoke then 6.0 else 10.0 in
  let n_seeds = if !smoke then 1 else 3 in
  let seeds = List.init n_seeds (fun i -> base_seed + i) in
  Printf.printf
    "== durable-fault battery (%d protocols x %d presets x %d seeds, %.0f \
     sim-s) ==\n\
     %!"
    (List.length Chaos.Audit.protocols)
    (List.length presets) n_seeds duration_s;
  let report m =
    Printf.printf
      "   %-36s verdict=%-5s live=%b  damage(torn=%d corrupt=%d stale=%d)  \
       repairs(torn=%d quar=%d peer=%d place=%d)  unrepaired=%d\n\
       %!"
      m.name m.verdict m.live m.disk_torn m.disk_corrupt m.disk_resurfaced
      m.repairs_torn m.repairs_quarantined m.repairs_peer m.place_repairs
      m.unrepaired
  in
  let runs =
    List.concat_map
      (fun protocol ->
        List.concat_map
          (fun preset ->
            List.map
              (fun seed ->
                let name =
                  Printf.sprintf "%s/%s/seed=%d"
                    (Chaos.Audit.protocol_name protocol)
                    (Chaos.Nemesis.preset_name preset)
                    seed
                in
                let m = measure ~name ~protocol ~preset ~duration_s ~seed () in
                report m;
                m)
              seeds)
          presets)
      Chaos.Audit.protocols
  in
  (* Determinism: repeat the first faulted run; the history digest must
     match byte for byte. *)
  let first = List.hd runs in
  let repeat =
    measure
      ~name:(first.name ^ "/repeat")
      ~protocol:(List.hd Chaos.Audit.protocols)
      ~preset:(List.hd presets) ~duration_s ~seed:base_seed ()
  in
  let deterministic = first.digest = repeat.digest in
  Printf.printf "   repeat digest match: %b\n%!" deterministic;
  let control = integrity_control ~base_seed ~max_tries:6 in
  let control_caught = control <> None in
  (match control with
  | Some (name, detail) ->
    Printf.printf "   integrity-off control caught (%s): %s\n%!" name
      (if String.length detail > 120 then String.sub detail 0 120 ^ "..."
       else detail)
  | None -> Printf.printf "   integrity-off control NOT caught\n%!");
  let all_pass =
    List.for_all (fun m -> m.verdict = "pass" && m.live && m.unrepaired = 0) runs
  in
  let repaired =
    List.exists (fun m -> m.repairs_torn + m.repairs_peer + m.place_repairs > 0) runs
  in
  let ok = all_pass && repaired && deterministic && control_caught in
  Printf.printf
    "all runs pass: %b   repairs exercised: %b   deterministic: %b   control \
     caught: %b   ok: %b\n\
     %!"
    all_pass repaired deterministic control_caught ok;
  let b = Buffer.create 8192 in
  Printf.bprintf b
    "{\n  \"schema\": \"rss-repro/durable/v1\",\n  \"smoke\": %b,\n  \
     \"seed\": %d,\n  \"duration_s\": %s,\n  \"runs\": [\n"
    !smoke base_seed (json_float duration_s);
  let n = List.length runs in
  List.iteri
    (fun i m ->
      Buffer.add_string b "    ";
      measured_json b m;
      Buffer.add_string b (if i < n - 1 then ",\n" else "\n"))
    runs;
  Printf.bprintf b
    "  ],\n  \"all_pass\": %b,\n  \"repairs_exercised\": %b,\n  \
     \"deterministic\": %b,\n  \"control_caught\": %b,\n  \
     \"control_detail\": \"%s\",\n  \"ok\": %b\n}\n"
    all_pass repaired deterministic control_caught
    (json_escape
       (match control with
       | Some (name, detail) -> name ^ ": " ^ detail
       | None -> "not caught"))
    ok;
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if not ok then exit 1
