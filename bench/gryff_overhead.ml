(* §7.4: Gryff-RSC's piggybacking overhead — throughput and median latency
   without WAN emulation, 10% conflicts, at YCSB-A (50/50) and YCSB-B (95/5)
   mixes, growing client counts. Expected within ~1% of Gryff. *)

let run ?(duration_s = 10.0) ?(service_time_us = 10) ?(n_keys = 100_000) ?(seed = 5)
    ?(client_counts = [ 8; 32; 128; 256 ]) () =
  Fmt.pr "=== §7.4: Gryff-RSC overhead, single DC, 10%% conflicts ===@.";
  Fmt.pr "per-message replica CPU %d us, %gs simulated per point@.@." service_time_us
    duration_s;
  List.iter
    (fun (label, write_ratio) ->
      Fmt.pr "%s:@." label;
      Fmt.pr "  %8s | %12s %10s | %12s %10s | %9s@." "clients" "gryff ops/s"
        "p50 (ms)" "rsc ops/s" "p50 (ms)" "delta";
      List.iter
        (fun n_clients ->
          let l =
            Harness.gryff_dc ~mode:Gryff.Config.Lin ~service_time_us ~n_clients
              ~conflict:0.10 ~write_ratio ~n_keys ~duration_s ~seed ()
          in
          let r =
            Harness.gryff_dc ~mode:Gryff.Config.Rsc ~service_time_us ~n_clients
              ~conflict:0.10 ~write_ratio ~n_keys ~duration_s ~seed ()
          in
          Harness.report_check "gryff" l.Harness.Run.check;
          Harness.report_check "gryff-rsc" r.Harness.Run.check;
          let tps_l = Harness.Run.gauge l "throughput_tps"
          and tps_r = Harness.Run.gauge r "throughput_tps" in
          Fmt.pr "  %8d | %12.0f %10.3f | %12.0f %10.3f | %8.1f%%@." n_clients tps_l
            (Harness.Run.gauge l "p50_ms") tps_r (Harness.Run.gauge r "p50_ms")
            (Stats.Summary.improvement ~baseline:tps_l ~variant:tps_r))
        client_counts;
      Fmt.pr "@.")
    [ ("YCSB-A (50% reads / 50% writes)", 0.5); ("YCSB-B (95% reads / 5% writes)", 0.05) ]
