(* Perf-regression scale suite.

   Drives each protocol family at 10-100x the op counts of the paper-figure
   benches and records, per run: ops/sec of host CPU, host CPU per simulated
   second, checker cost, and heap footprint via [Gc.stat]. Every scenario
   runs twice — [`No_check] for raw simulator speed and [`Online] for the
   streaming checker — so the checker's cost is the difference between two
   otherwise identical seeded runs (record hooks draw no randomness, so the
   simulated schedules are the same).

   A separate scaling probe re-runs the Spanner scenario at 1/4 and 1/2 of
   its duration and fits a log-log exponent to the checker cost against the
   history length, in both deterministic work units (insertion displacement,
   reproducible across hosts) and measured CPU seconds. The suite's claim
   that online checking is sub-quadratic is that fitted exponent, emitted in
   the JSON rather than asserted — CI validates the report's shape; humans
   and trend dashboards read the exponent.

   Output is machine-readable JSON (default [BENCH_scale.json]):

     dune exec bench/scale.exe --              # full sizes, ~1-2 min
     dune exec bench/scale.exe -- --smoke      # CI sizes, a few seconds

   Exit status: 1 if any verified history failed, or if a full (non-smoke)
   run missed its minimum op count — so CI and local runs alike catch both
   consistency and throughput regressions. *)

let verdict_name = function
  | Harness.Run.Pass -> "pass"
  | Harness.Run.Fail _ -> "fail"
  | Harness.Run.Unknown _ -> "unknown"

let verdict_detail = function
  | Harness.Run.Pass -> ""
  | Harness.Run.Fail m | Harness.Run.Unknown m -> m

type measured = {
  check : string;  (* "none" | "online" *)
  n_ops : int;
  sim_s : float;
  cpu_s : float;
  checker_finish_s : float;
  checker_work : int;
  checker_added : int;
  checker_max_displacement : int;
  live_words : int;
  heap_growth_words : int;
  verdict : string;
  detail : string;
}

let measure ~check_name (f : unit -> Harness.Run.t) =
  (* Compact first so [live_words] reflects this run, not the previous
     scenario's garbage. [Gc.stat ()].top_heap_words is process-global (it
     never shrinks), so reporting it per run would make every scenario after
     the hungriest repeat the same number; instead each run reports its own
     growth over the post-compact baseline, and the process-wide peak is
     emitted once at the report's top level. *)
  Gc.compact ();
  let st0 = Gc.stat () in
  let t0 = Sys.time () in
  let r = f () in
  let cpu_s = Sys.time () -. t0 in
  let st = Gc.stat () in
  let gauge name =
    let g = Harness.Run.gauge r name in
    if Float.is_nan g then 0.0 else g
  in
  ( r,
    {
      check = check_name;
      n_ops = Harness.Run.n_records r;
      sim_s = Sim.Engine.to_sec r.Harness.Run.duration_us;
      cpu_s;
      checker_finish_s = gauge "check.finish_s";
      checker_work = Harness.Run.counter r "check.work";
      checker_added = Harness.Run.counter r "check.added";
      checker_max_displacement = Harness.Run.counter r "check.max_displacement";
      live_words = st.Gc.live_words;
      heap_growth_words = st.Gc.top_heap_words - st0.Gc.top_heap_words;
      verdict = verdict_name r.Harness.Run.check;
      detail = verdict_detail r.Harness.Run.check;
    } )

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  name : string;
  min_ops : int;  (* full-mode floor; a run below this is a regression *)
  run : check_mode:Harness.check_mode -> duration_s:float -> Harness.Run.t;
  duration_s : float;  (* full-mode duration *)
  smoke_duration_s : float;
}

let scenarios ~seed =
  [
    (* ~23.5k txns per simulated second: 22 s -> ~515k transactions. *)
    {
      name = "spanner-dc-rss";
      min_ops = 500_000;
      duration_s = 22.0;
      smoke_duration_s = 2.0;
      run =
        (fun ~check_mode ~duration_s ->
          Harness.spanner_dc
            ~env:Harness.Env.(default |> with_check check_mode)
            ~mode:Spanner.Config.Rss ~n_shards:4 ~service_time_us:10
            ~n_clients:16 ~n_keys:2000 ~duration_s ~seed ());
    };
    (* ~67k ops per simulated second: 8 s -> ~530k operations. *)
    {
      name = "gryff-dc-lin";
      min_ops = 450_000;
      duration_s = 8.0;
      smoke_duration_s = 0.5;
      run =
        (fun ~check_mode ~duration_s ->
          Harness.gryff_dc
            ~env:Harness.Env.(default |> with_check check_mode)
            ~mode:Gryff.Config.Lin ~service_time_us:10 ~n_clients:24
            ~conflict:0.1 ~write_ratio:0.5 ~n_keys:2000 ~duration_s ~seed ());
    };
    (* WAN latencies bound throughput (~220 ops/s of simulated time), so
       scale comes from duration; host cost stays small. *)
    {
      name = "gryff-wan-rsc";
      min_ops = 20_000;
      duration_s = 120.0;
      smoke_duration_s = 20.0;
      run =
        (fun ~check_mode ~duration_s ->
          Harness.gryff_wan ~n_clients:32
            ~env:Harness.Env.(default |> with_check check_mode)
            ~mode:Gryff.Config.Rsc ~conflict:0.2 ~write_ratio:0.5 ~n_keys:2000
            ~duration_s ~seed ());
    };
  ]

(* ------------------------------------------------------------------ *)
(* Checker-scaling probe                                               *)
(* ------------------------------------------------------------------ *)

type point = { p_n : int; p_work : int; p_cpu : float }

(* Least-squares slope of ln y against ln x — the growth exponent. *)
let fitted_exponent points ~y =
  let xs = List.map (fun p -> log (float_of_int (max 1 p.p_n))) points in
  let ys = List.map (fun p -> log (Float.max 1e-9 (y p))) points in
  let n = float_of_int (List.length points) in
  let mean l = List.fold_left ( +. ) 0.0 l /. n in
  let xm = mean xs and ym = mean ys in
  let num =
    List.fold_left2 (fun a x y -> a +. ((x -. xm) *. (y -. ym))) 0.0 xs ys
  in
  let den = List.fold_left (fun a x -> a +. ((x -. xm) ** 2.0)) 0.0 xs in
  if den <= 0.0 then nan else num /. den

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled; the repo deliberately has no JSON dep)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6f" f

let measured_json b m =
  Printf.bprintf b
    "{\"check\": \"%s\", \"n_ops\": %d, \"sim_s\": %s, \"cpu_s\": %s, \
     \"ops_per_cpu_s\": %s, \"cpu_per_sim_s\": %s, \"checker_finish_s\": %s, \
     \"checker_work\": %d, \"checker_added\": %d, \
     \"checker_max_displacement\": %d, \"live_words\": %d, \
     \"heap_growth_words\": %d, \"verdict\": \"%s\", \"detail\": \"%s\"}"
    m.check m.n_ops (json_float m.sim_s) (json_float m.cpu_s)
    (json_float (float_of_int m.n_ops /. Float.max 1e-9 m.cpu_s))
    (json_float (m.cpu_s /. Float.max 1e-9 m.sim_s))
    (json_float m.checker_finish_s)
    m.checker_work m.checker_added m.checker_max_displacement m.live_words
    m.heap_growth_words m.verdict (json_escape m.detail)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_scale.json" in
  let seed = ref 42 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " CI sizes (seconds, not minutes)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_scale.json)");
      ("--seed", Arg.Set_int seed, "N workload seed (default 42)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "scale [--smoke] [--out FILE] [--seed N]";
  let failed = ref false in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"schema\": \"rss-repro/scale/v2\",\n  \"smoke\": %b,\n  \"seed\": \
     %d,\n  \"scenarios\": [\n"
    !smoke !seed;
  let scaling_points = ref [] in
  List.iteri
    (fun i sc ->
      let duration_s = if !smoke then sc.smoke_duration_s else sc.duration_s in
      Printf.printf "== %s (%.1f simulated s) ==\n%!" sc.name duration_s;
      let _, raw =
        measure ~check_name:"none" (fun () ->
            sc.run ~check_mode:`No_check ~duration_s)
      in
      Printf.printf
        "   raw:    %7d ops  %6.2f cpu-s  (%7.0f ops/cpu-s, %5.2f cpu-s per \
         sim-s)\n\
         %!"
        raw.n_ops raw.cpu_s
        (float_of_int raw.n_ops /. Float.max 1e-9 raw.cpu_s)
        (raw.cpu_s /. Float.max 1e-9 raw.sim_s);
      let _, online =
        measure ~check_name:"online" (fun () ->
            sc.run ~check_mode:`Online ~duration_s)
      in
      Printf.printf
        "   online: %7d ops  %6.2f cpu-s  verdict=%s  work=%d  max-disp=%d\n%!"
        online.n_ops online.cpu_s online.verdict online.checker_work
        online.checker_max_displacement;
      if online.verdict = "fail" then begin
        Printf.printf "   CONSISTENCY FAILURE: %s\n%!" online.detail;
        failed := true
      end;
      if (not !smoke) && online.n_ops < sc.min_ops then begin
        Printf.printf "   THROUGHPUT REGRESSION: %d ops < required %d\n%!"
          online.n_ops sc.min_ops;
        failed := true
      end;
      (* The Spanner scenario doubles as the checker-scaling subject: its
         full-size online run is the probe's largest point. *)
      if sc.name = "spanner-dc-rss" then begin
        let checker_cpu = Float.max online.checker_finish_s
            (online.cpu_s -. raw.cpu_s) in
        scaling_points :=
          [ { p_n = online.n_ops; p_work = online.checker_work;
              p_cpu = checker_cpu } ];
        List.iter
          (fun frac ->
            let d = duration_s *. frac in
            let _, r =
              measure ~check_name:"none" (fun () ->
                  sc.run ~check_mode:`No_check ~duration_s:d)
            in
            let _, o =
              measure ~check_name:"online" (fun () ->
                  sc.run ~check_mode:`Online ~duration_s:d)
            in
            let checker_cpu =
              Float.max o.checker_finish_s (o.cpu_s -. r.cpu_s)
            in
            Printf.printf
              "   probe %4.2fx: %7d ops  checker %5.2f cpu-s  work=%d\n%!"
              frac o.n_ops checker_cpu o.checker_work;
            scaling_points :=
              { p_n = o.n_ops; p_work = o.checker_work; p_cpu = checker_cpu }
              :: !scaling_points)
          [ 0.5; 0.25 ]
      end;
      Printf.bprintf b "    {\"name\": \"%s\", \"runs\": [\n      " sc.name;
      measured_json b raw;
      Buffer.add_string b ",\n      ";
      measured_json b online;
      Printf.bprintf b "\n    ]}%s\n"
        (if i < List.length (scenarios ~seed:!seed) - 1 then "," else ""))
    (scenarios ~seed:!seed);
  Buffer.add_string b "  ],\n";
  let points = List.sort (fun a c -> compare a.p_n c.p_n) !scaling_points in
  let work_exp = fitted_exponent points ~y:(fun p -> float_of_int p.p_work) in
  let cpu_exp = fitted_exponent points ~y:(fun p -> p.p_cpu) in
  Printf.printf
    "checker scaling: work-units exponent %.2f, cpu exponent %.2f (1.0 = \
     linear, 2.0 = quadratic)\n\
     %!"
    work_exp cpu_exp;
  Printf.bprintf b "  \"checker_scaling\": {\n    \"scenario\": \
     \"spanner-dc-rss\",\n    \"points\": [";
  List.iteri
    (fun i p ->
      Printf.bprintf b "%s\n      {\"n_ops\": %d, \"checker_work\": %d, \
         \"checker_cpu_s\": %s}"
        (if i > 0 then "," else "")
        p.p_n p.p_work (json_float p.p_cpu))
    points;
  Printf.bprintf b
    "\n    ],\n    \"work_exponent\": %s,\n    \"cpu_exponent\": %s,\n    \
     \"sub_quadratic\": %b\n  },\n  \"top_heap_words\": %d\n}\n"
    (json_float work_exp) (json_float cpu_exp)
    (Float.is_nan work_exp = false && work_exp < 2.0)
    (Gc.stat ()).Gc.top_heap_words;
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if !failed then exit 1
