(* Schedule-exploration smoke battery.

   Three sections, all seeded and machine-checkable:

     determinism -- the perturbation layer's contract: installing the
                    all-zero vector is byte-identical to never installing
                    it, a non-zero vector actually changes the schedule,
                    and replaying a perturbed input reproduces its digest.
     safe        -- a short coverage-guided search over correct
                    configurations; reports coverage and any (unexpected)
                    failures.
     control     -- the seeded-bug hunt: the same search pointed at the
                    Gryff client with the RSC dependency fence disabled
                    (unsafe_no_deps). The explorer must find a
                    Check_online Fail within budget, shrink it to a
                    cheaper input that still fails, serialize it as a
                    corpus file, and replay that file to the identical
                    verdict twice.

   Output is machine-readable JSON (default BENCH_explore.json):

     dune exec bench/explore.exe --                 # full budget, ~2 min
     dune exec bench/explore.exe -- --smoke         # CI budget, ~30 s
     dune exec bench/explore.exe -- --corpus DIR    # keep shrunk repros

   Exit status 1 unless: all three determinism checks hold, the control
   bug is found, the shrunk repro is no costlier than the find and still
   fails, and its corpus file replays byte-identically twice. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let input_json b (i : Explore.Exec.input) =
  let tie, jitter = Explore.Perturb.to_string i.Explore.Exec.perturb in
  Printf.bprintf b
    "{\"protocol\":\"%s\",\"preset\":\"%s\",\"seed\":%d,\"nemesis_seed\":%d,\
     \"duration_ms\":%d,\"slots\":%d,\"keys\":%d,\"batch_us\":%d,\
     \"disk_rate_pct\":%d,\"unsafe\":%b,\"tie\":\"%s\",\"jitter\":\"%s\",\
     \"cost\":%d}"
    (Chaos.Audit.protocol_name i.Explore.Exec.protocol)
    (Chaos.Nemesis.preset_name i.Explore.Exec.preset)
    i.Explore.Exec.seed i.Explore.Exec.nemesis_seed i.Explore.Exec.duration_ms
    i.Explore.Exec.n_slots i.Explore.Exec.n_keys i.Explore.Exec.batch_us
    i.Explore.Exec.disk_rate_pct i.Explore.Exec.unsafe (json_escape tie)
    (json_escape jitter)
    (Explore.Search.cost i)

let () =
  let smoke = ref false in
  let out = ref "BENCH_explore.json" in
  let corpus_dir = ref "" in
  let budget = ref 0 in
  let argv = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--corpus" :: v :: rest ->
      corpus_dir := v;
      parse rest
    | "--budget" :: v :: rest ->
      budget := int_of_string v;
      parse rest
    | a :: rest ->
      if String.length a > 0 && a.[0] = '-' then begin
        Printf.eprintf "unknown flag %s\n" a;
        exit 2
      end;
      parse rest
  in
  parse (List.tl argv);
  let corpus_dir =
    if String.length !corpus_dir > 0 then Some !corpus_dir else None
  in
  let t0 = Sys.time () in

  (* --- determinism ------------------------------------------------- *)
  Printf.printf "determinism: perturbation-off identity + replay\n%!";
  let base_in =
    { (Explore.Exec.base Chaos.Audit.Gryff_rsc) with
      Explore.Exec.seed = 11;
      nemesis_seed = 7;
      duration_ms = 1_000 }
  in
  (* The raw audit run, no explorer involved: the reference digest. *)
  let raw_digest =
    let i = base_in in
    let duration_s = float_of_int i.Explore.Exec.duration_ms /. 1_000.0 in
    let schedule =
      Chaos.Audit.nemesis_schedule i.Explore.Exec.protocol
        i.Explore.Exec.preset ~duration_s ~seed:i.Explore.Exec.nemesis_seed
    in
    let run =
      Chaos.Audit.run i.Explore.Exec.protocol ~schedule
        ~n_slots:i.Explore.Exec.n_slots ~n_keys:i.Explore.Exec.n_keys
        ~timeout_us:(i.Explore.Exec.timeout_ms * 1_000)
        ~conflict:(float_of_int i.Explore.Exec.conflict_pct /. 100.0)
        ~write_ratio:(float_of_int i.Explore.Exec.write_pct /. 100.0)
        ~failover:
          (Chaos.Nemesis.requires_failover i.Explore.Exec.preset)
        ~duration_s ~seed:i.Explore.Exec.seed ()
    in
    Digest.to_hex (Digest.string run.Chaos.Audit.trace)
  in
  let off = Explore.Exec.run base_in in
  let off_identical =
    String.equal off.Explore.Exec.trace_digest raw_digest
  in
  let perturbed_in =
    { base_in with
      Explore.Exec.perturb =
        { Explore.Perturb.tie = [| 3; -5; 0; 7; -1; 2 |];
          jitter_us = [| 4_000; 0; 1_500; 800 |] } }
  in
  let p1 = Explore.Exec.run perturbed_in in
  let p2 = Explore.Exec.run perturbed_in in
  let perturb_changes =
    not (String.equal p1.Explore.Exec.trace_digest off.Explore.Exec.trace_digest)
  in
  let perturb_replay =
    String.equal p1.Explore.Exec.trace_digest p2.Explore.Exec.trace_digest
    && String.equal p1.Explore.Exec.signature p2.Explore.Exec.signature
  in
  Printf.printf
    "  off-identity %b, perturb-changes-schedule %b, perturb-replay %b\n%!"
    off_identical perturb_changes perturb_replay;

  (* --- safe sweep --------------------------------------------------- *)
  let safe_budget = if !budget > 0 then !budget else if !smoke then 150 else 400 in
  Printf.printf "safe sweep: budget %d\n%!" safe_budget;
  let safe_cfg =
    { (Explore.Search.default_config ()) with
      Explore.Search.protocols = [ Chaos.Audit.Spanner_rss; Chaos.Audit.Gryff_rsc ];
      presets =
        [ Chaos.Nemesis.Partition_heal; Chaos.Nemesis.Reorder_storm;
          Chaos.Nemesis.Asym_block ];
      budget = safe_budget;
      search_seed = 5;
      max_failures = 2;
      corpus_dir }
  in
  let safe = Explore.Search.run safe_cfg in
  Printf.printf "  %d execs, %d signatures, %d fails, %d unknowns\n%!"
    safe.Explore.Search.execs safe.Explore.Search.signatures
    (List.length safe.Explore.Search.failures)
    safe.Explore.Search.unknowns;

  (* --- seeded-bug control ------------------------------------------- *)
  let control_budget =
    if !budget > 0 then !budget else if !smoke then 1_500 else 3_000
  in
  Printf.printf "control hunt: unsafe_no_deps, budget %d\n%!" control_budget;
  let metrics = Obs.Metrics.create () in
  (* The hunt base is the shape empirically densest in no-deps anomalies:
     a single hot key (high conflict, small keyspace), read-mostly so the
     carstamp frontier advances slowly and a stranded write stays maximal
     long enough for one client to observe it twice, and a timeout short
     enough that slots stuck behind a one-way block respawn and re-read.
     The search still owns the seeds and perturbation vectors — at this
     budget the control falls within the first ~1000 executions for every
     search seed tried. *)
  let control_cfg =
    { (Explore.Search.default_config ()) with
      Explore.Search.protocols = [ Chaos.Audit.Gryff_rsc ];
      presets = [ Chaos.Nemesis.Asym_block ];
      budget = control_budget;
      search_seed = 1;
      base =
        (fun p ->
          { (Explore.Exec.base p) with
            Explore.Exec.duration_ms = 2_500;
            timeout_ms = 600;
            n_slots = 10;
            n_keys = 2;
            conflict_pct = 100;
            write_pct = 28;
            unsafe = true });
      max_failures = 1;
      shrink_budget = 400;
      corpus_dir =
        Some (Option.value corpus_dir ~default:"_explore_corpus");
      metrics = Some metrics }
  in
  let control = Explore.Search.run control_cfg in
  let found = control.Explore.Search.failures <> [] in
  let shrink_ok, replay_ok, corpus_file, failure_json =
    match control.Explore.Search.failures with
    | [] -> (false, false, "", "null")
    | f :: _ ->
      let shrunk_fails =
        String.length f.Explore.Search.shrunk_verdict >= 4
        && String.equal (String.sub f.Explore.Search.shrunk_verdict 0 4) "fail"
      in
      let no_costlier =
        Explore.Search.cost f.Explore.Search.shrunk
        <= Explore.Search.cost f.Explore.Search.input
      in
      let replay_ok, path =
        match f.Explore.Search.corpus_file with
        | None -> (false, "")
        | Some path -> (
          match (Explore.Corpus.replay_file path, Explore.Corpus.replay_file path)
          with
          | Ok r1, Ok r2 ->
            ( r1.Explore.Corpus.matches && r2.Explore.Corpus.matches
              && String.equal
                   (Explore.Exec.verdict_string
                      r1.Explore.Corpus.outcome.Explore.Exec.verdict)
                   (Explore.Exec.verdict_string
                      r2.Explore.Corpus.outcome.Explore.Exec.verdict),
              path )
          | _ -> (false, path))
      in
      let b = Buffer.create 512 in
      Printf.bprintf b
        "{\"found_at\":%d,\"verdict\":\"%s\",\"shrink_execs\":%d,\
         \"shrunk_verdict\":\"%s\",\"input\":"
        f.Explore.Search.found_at
        (json_escape f.Explore.Search.verdict)
        f.Explore.Search.shrink_execs
        (json_escape f.Explore.Search.shrunk_verdict);
      input_json b f.Explore.Search.input;
      Printf.bprintf b ",\"shrunk\":";
      input_json b f.Explore.Search.shrunk;
      Printf.bprintf b "}";
      (shrunk_fails && no_costlier, replay_ok, path, Buffer.contents b)
  in
  Printf.printf "  found %b (execs %d), shrink_ok %b, replay_ok %b\n%!" found
    control.Explore.Search.execs shrink_ok replay_ok;
  (match control.Explore.Search.failures with
  | f :: _ ->
    Printf.printf "  repro: %s\n  shrunk: %s\n%!"
      (Explore.Exec.describe f.Explore.Search.input)
      (Explore.Exec.describe f.Explore.Search.shrunk)
  | [] -> ());

  let determinism_ok = off_identical && perturb_changes && perturb_replay in
  let ok = determinism_ok && found && shrink_ok && replay_ok in
  let snap = Obs.Metrics.snapshot metrics in
  let mc name = Obs.Metrics.counter_value snap name in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"schema\": \"rss-repro/explore/v1\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" !smoke;
  Printf.bprintf b
    "  \"determinism\": {\"perturb_off_identical\": %b, \
     \"perturb_changes_schedule\": %b, \"perturb_replay_identical\": %b},\n"
    off_identical perturb_changes perturb_replay;
  Printf.bprintf b
    "  \"safe\": {\"execs\": %d, \"signatures\": %d, \"novel\": %d, \
     \"fails\": %d, \"unknowns\": %d},\n"
    safe.Explore.Search.execs safe.Explore.Search.signatures
    safe.Explore.Search.novel
    (List.length safe.Explore.Search.failures)
    safe.Explore.Search.unknowns;
  Printf.bprintf b
    "  \"control\": {\"execs\": %d, \"signatures\": %d, \"found\": %b, \
     \"shrink_ok\": %b, \"replay_deterministic\": %b, \"corpus_file\": \
     \"%s\", \"metrics\": {\"execs\": %d, \"novel\": %d, \"fails\": %d, \
     \"shrink_execs\": %d, \"corpus_saved\": %d}, \"failure\": %s},\n"
    control.Explore.Search.execs control.Explore.Search.signatures found
    shrink_ok replay_ok (json_escape corpus_file) (mc "explore.execs")
    (mc "explore.novel") (mc "explore.fails") (mc "explore.shrink_execs")
    (mc "explore.corpus_saved") failure_json;
  Printf.bprintf b "  \"cpu_s\": %.3f,\n" (Sys.time () -. t0);
  Printf.bprintf b "  \"ok\": %b\n}\n" ok;
  let oc = open_out !out in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s (ok=%b, %.1fs cpu)\n%!" !out ok (Sys.time () -. t0);
  exit (if ok then 0 else 1)
